"""Controlled data corruptions for robustness experiments.

The paper's explanation for condensation sometimes *beating* the
original data is noise removal: "the aggregate statistics of each
cluster of points often mask the effects of a particular anomaly" (§4).
To test that mechanism rather than assert it, these helpers inject
measured amounts of three classic corruptions — label flips, attribute
noise, and planted outliers — so experiments can sweep corruption
strength and watch who degrades faster.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.rng import check_random_state


def flip_labels(
    labels: np.ndarray, fraction: float, random_state=None
) -> np.ndarray:
    """Return a copy of ``labels`` with a fraction reassigned randomly.

    Each corrupted position receives a label drawn uniformly from the
    *other* classes, so the requested fraction is exactly the fraction
    of wrong labels.

    Parameters
    ----------
    labels:
        Label array, 1-D, with at least two distinct classes.
    fraction:
        Fraction of positions to corrupt, in ``[0, 1]``.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    numpy.ndarray
        Corrupted copy of ``labels``.

    Raises
    ------
    ValueError
        If ``fraction`` is outside ``[0, 1]``, ``labels`` is not 1-D,
        or fewer than two classes are present.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    classes = np.unique(labels)
    if classes.shape[0] < 2:
        raise ValueError("label flipping needs at least two classes")
    rng = check_random_state(random_state)
    corrupted = labels.copy()
    n_flip = int(round(fraction * labels.shape[0]))
    if n_flip == 0:
        return corrupted
    positions = rng.choice(labels.shape[0], size=n_flip, replace=False)
    for position in positions:
        others = classes[classes != labels[position]]
        corrupted[position] = others[rng.integers(0, others.shape[0])]
    return corrupted


def add_attribute_noise(
    data: np.ndarray,
    scale: float,
    fraction: float = 1.0,
    random_state=None,
) -> np.ndarray:
    """Add Gaussian noise to a fraction of records.

    ``scale`` is relative to each attribute's standard deviation, so
    ``scale=0.5`` perturbs affected records by half their natural
    spread regardless of units.

    Parameters
    ----------
    data:
        Record array, shape ``(n, d)``.
    scale:
        Noise standard deviation as a multiple of each attribute's
        spread; must be non-negative.
    fraction:
        Fraction of records perturbed, in ``[0, 1]`` (default: all).
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    numpy.ndarray, shape (n, d)
        Corrupted copy of ``data``.

    Raises
    ------
    ValueError
        If ``scale`` is negative, ``fraction`` is outside ``[0, 1]``,
        or ``data`` is not 2-D.
    """
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    rng = check_random_state(random_state)
    corrupted = data.copy()
    n_affected = int(round(fraction * data.shape[0]))
    if n_affected == 0 or scale == 0.0:
        return corrupted
    rows = rng.choice(data.shape[0], size=n_affected, replace=False)
    spreads = data.std(axis=0)
    spreads[spreads == 0.0] = 1.0
    corrupted[rows] += scale * spreads * rng.standard_normal(
        (n_affected, data.shape[1])
    )
    return corrupted


def inject_outliers(
    data: np.ndarray,
    fraction: float,
    magnitude: float = 6.0,
    random_state=None,
):
    """Replace a fraction of records with far-out points.

    Outliers are placed at ``magnitude`` standard deviations from the
    mean in a random direction — the §2.2 hard case.

    Parameters
    ----------
    data:
        Record array, shape ``(n, d)``.
    fraction:
        Fraction of records replaced, in ``[0, 1]``.
    magnitude:
        Distance of the planted points from the mean, in per-attribute
        standard deviations; must be positive.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    corrupted : numpy.ndarray, shape (n, d)
        Copy of ``data`` with outliers planted.
    outlier_indices : numpy.ndarray
        Sorted row indices that were replaced.

    Raises
    ------
    ValueError
        If ``fraction`` is outside ``[0, 1]``, ``magnitude`` is not
        positive, or ``data`` is not 2-D.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if magnitude <= 0:
        raise ValueError(f"magnitude must be positive, got {magnitude}")
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    rng = check_random_state(random_state)
    corrupted = data.copy()
    n_outliers = int(round(fraction * data.shape[0]))
    if n_outliers == 0:
        return corrupted, np.array([], dtype=np.int64)
    rows = rng.choice(data.shape[0], size=n_outliers, replace=False)
    mean = data.mean(axis=0)
    spreads = data.std(axis=0)
    spreads[spreads == 0.0] = 1.0
    directions = rng.standard_normal((n_outliers, data.shape[1]))
    directions /= np.linalg.norm(
        directions, axis=1, keepdims=True
    )
    corrupted[rows] = mean + magnitude * spreads * directions
    return corrupted, np.sort(rows)

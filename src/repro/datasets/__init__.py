"""Data sets: UCI statistical twins and generic synthetic generators."""

from repro.datasets.base import Dataset
from repro.datasets.corruptions import (
    add_attribute_noise,
    flip_labels,
    inject_outliers,
)
from repro.datasets.generators import (
    make_classification_mixture,
    make_correlated_blobs,
    make_factor_regression,
    make_stream_batches,
    make_two_moons,
    random_covariance,
)
from repro.datasets.twins import (
    TWIN_LOADERS,
    load_abalone,
    load_ecoli,
    load_ionosphere,
    load_pima,
    load_twin,
)

__all__ = [
    "Dataset",
    "add_attribute_noise",
    "flip_labels",
    "inject_outliers",
    "make_classification_mixture",
    "make_correlated_blobs",
    "make_factor_regression",
    "make_stream_batches",
    "make_two_moons",
    "random_covariance",
    "TWIN_LOADERS",
    "load_abalone",
    "load_ecoli",
    "load_ionosphere",
    "load_pima",
    "load_twin",
]

"""Statistical significance helpers for experiment comparisons.

The paper eyeballs curve differences; these utilities make "condensed
is comparable to original" a testable statement: a paired permutation
test for per-fold/per-trial score differences and a bootstrap
confidence interval for a mean difference.  Implemented from scratch on
numpy so the harness stays dependency-light.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.rng import check_random_state


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired significance analysis.

    Attributes
    ----------
    mean_difference:
        Mean of ``a − b`` over the pairs.
    p_value:
        Two-sided paired permutation (sign-flip) p-value for the null
        hypothesis that the pairing is symmetric around zero.
    ci_low, ci_high:
        Bootstrap percentile confidence interval for the mean
        difference.
    n_pairs:
        Number of paired observations.
    """

    mean_difference: float
    p_value: float
    ci_low: float
    ci_high: float
    n_pairs: int

    @property
    def significant(self) -> bool:
        """Whether the difference is significant at the 5% level."""
        return self.p_value < 0.05


def paired_permutation_test(
    scores_a,
    scores_b,
    n_permutations: int = 10_000,
    random_state=None,
) -> float:
    """Two-sided sign-flip permutation test on paired scores.

    Under the null hypothesis the signs of the paired differences are
    exchangeable; the p-value is the fraction of random sign
    assignments whose mean difference is at least as extreme as the
    observed one (with the add-one correction that keeps it positive).

    Parameters
    ----------
    scores_a, scores_b:
        Paired score arrays of equal length (e.g. per-fold accuracies
        of two conditions).
    n_permutations:
        Number of random sign assignments; must be positive.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    float
        Two-sided p-value in ``(0, 1]``.

    Raises
    ------
    ValueError
        If ``n_permutations`` is not positive.
    """
    differences = _paired_differences(scores_a, scores_b)
    if n_permutations < 1:
        raise ValueError(
            f"n_permutations must be >= 1, got {n_permutations}"
        )
    rng = check_random_state(random_state)
    observed = abs(float(differences.mean()))
    if np.allclose(differences, 0.0):
        return 1.0
    signs = rng.choice(
        [-1.0, 1.0], size=(n_permutations, differences.shape[0])
    )
    permuted_means = np.abs(
        (signs * differences[None, :]).mean(axis=1)
    )
    exceeding = int(np.sum(permuted_means >= observed - 1e-15))
    return (exceeding + 1) / (n_permutations + 1)


def bootstrap_mean_difference_ci(
    scores_a,
    scores_b,
    confidence: float = 0.95,
    n_resamples: int = 10_000,
    random_state=None,
):
    """Percentile bootstrap CI for the mean paired difference ``a − b``.

    Parameters
    ----------
    scores_a, scores_b:
        Paired score arrays of equal length (e.g. per-fold accuracies
        of two conditions).
    confidence:
        Coverage level in ``(0, 1)``.
    n_resamples:
        Number of bootstrap resamples; must be positive.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    low : float
        Lower CI endpoint.
    high : float
        Upper CI endpoint.

    Raises
    ------
    ValueError
        If ``confidence`` or ``n_resamples`` is out of range.
    """
    differences = _paired_differences(scores_a, scores_b)
    if not 0.0 < confidence < 1.0:
        raise ValueError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    rng = check_random_state(random_state)
    n = differences.shape[0]
    indices = rng.integers(0, n, size=(n_resamples, n))
    resampled_means = differences[indices].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(resampled_means, [tail, 1.0 - tail])
    return float(low), float(high)


def compare_paired_scores(
    scores_a,
    scores_b,
    confidence: float = 0.95,
    n_permutations: int = 10_000,
    n_resamples: int = 10_000,
    random_state=None,
) -> PairedComparison:
    """Full paired analysis: mean difference, p-value and bootstrap CI.

    Parameters
    ----------
    scores_a, scores_b:
        Paired score arrays of equal length (e.g. per-fold accuracies
        of two conditions).
    confidence:
        Coverage level of the bootstrap CI.
    n_permutations:
        Permutations for the sign-flip test.
    n_resamples:
        Bootstrap resamples for the CI.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    PairedComparison
        Mean difference, p-value, CI and pair count.
    """
    differences = _paired_differences(scores_a, scores_b)
    rng = check_random_state(random_state)
    p_value = paired_permutation_test(
        scores_a, scores_b, n_permutations=n_permutations,
        random_state=rng,
    )
    ci_low, ci_high = bootstrap_mean_difference_ci(
        scores_a, scores_b, confidence=confidence,
        n_resamples=n_resamples, random_state=rng,
    )
    return PairedComparison(
        mean_difference=float(differences.mean()),
        p_value=p_value,
        ci_low=ci_low,
        ci_high=ci_high,
        n_pairs=differences.shape[0],
    )


def _paired_differences(scores_a, scores_b) -> np.ndarray:
    scores_a = np.asarray(scores_a, dtype=float)
    scores_b = np.asarray(scores_b, dtype=float)
    if scores_a.shape != scores_b.shape or scores_a.ndim != 1:
        raise ValueError(
            "paired scores must be 1-D arrays of equal length, got "
            f"{scores_a.shape} and {scores_b.shape}"
        )
    if scores_a.shape[0] < 2:
        raise ValueError("need at least 2 pairs")
    return scores_a - scores_b

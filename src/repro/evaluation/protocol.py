"""The paper's experimental protocol (§4), as reusable procedures.

For each data set and group size the paper reports:

* (a) the accuracy of a nearest-neighbour classifier trained on
  condensation-anonymized data (static and dynamic) versus trained on
  the original data;
* (b) the covariance compatibility coefficient μ between the original
  and the anonymized data (static and dynamic).

This module implements both measurements, with the dynamic regime
bootstrapped from a static prefix and fed the remainder as a stream —
the setup of Fig. 2.  Regression data sets (Abalone) follow the paper's
protocol via within-tolerance accuracy; the target is condensed jointly
with the attributes so anonymized records carry a regenerated target
that preserves attribute-target correlations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.condensation import create_condensed_groups
from repro.core.condenser import ClasswiseCondenser
from repro.core.dynamic import DynamicGroupMaintainer
from repro.core.generation import generate_anonymized_data
from repro.core.statistics import CondensedModel
from repro.datasets.base import Dataset
from repro.linalg.rng import check_random_state, derive_seed
from repro.metrics.compatibility import covariance_compatibility
from repro.neighbors.knn import KNeighborsClassifier, KNeighborsRegressor
from repro.preprocessing.scalers import StandardScaler
from repro.preprocessing.splits import train_test_split

#: Fraction of records used to bootstrap the dynamic maintainer before
#: the rest arrives as a stream.
DYNAMIC_BOOTSTRAP_FRACTION = 0.25


@dataclass(frozen=True)
class ConditionResult:
    """One experimental condition's outcome.

    Attributes
    ----------
    accuracy:
        Classification accuracy, or tolerance accuracy for regression.
    average_group_size:
        Realized mean group size (the paper's X axis; for the dynamic
        regime this generally exceeds ``k``).
    """

    accuracy: float
    average_group_size: float


def condense_dataset(
    data: np.ndarray,
    k: int,
    mode: str,
    strategy="random",
    random_state=None,
) -> CondensedModel:
    """Condense an unlabelled record array in the requested regime.

    ``mode="static"`` runs Fig. 1 over the whole array.
    ``mode="dynamic"`` bootstraps from the first
    :data:`DYNAMIC_BOOTSTRAP_FRACTION` of records and streams the rest
    (Fig. 2).

    Parameters
    ----------
    data:
        Record array, shape ``(n, d)``.
    k:
        Indistinguishability level (minimum group size).
    mode:
        ``"static"`` or ``"dynamic"``.
    strategy:
        Group seeding strategy name or object.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    CondensedModel
        The condensation of ``data``.

    Raises
    ------
    ValueError
        If ``mode`` is unknown.
    """
    data = np.asarray(data, dtype=float)
    if mode == "static":
        return create_condensed_groups(
            data, k, strategy=strategy, random_state=random_state
        )
    if mode != "dynamic":
        raise ValueError(f"mode must be 'static' or 'dynamic', got {mode!r}")
    cut = max(k, int(round(DYNAMIC_BOOTSTRAP_FRACTION * data.shape[0])))
    cut = min(cut, data.shape[0])
    maintainer = DynamicGroupMaintainer(
        k, initial_data=data[:cut], strategy=strategy,
        random_state=random_state,
    )
    maintainer.add_stream(data[cut:])
    return maintainer.to_model()


def measure_compatibility(
    data: np.ndarray,
    k: int,
    mode: str,
    sampler="uniform",
    random_state=None,
):
    """μ between a record array and its condensation-anonymized copy.

    Parameters
    ----------
    data:
        Record array, shape ``(n, d)``.
    k:
        Indistinguishability level.
    mode:
        ``"static"`` or ``"dynamic"``.
    sampler:
        Per-eigenvector sampler name or callable.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    mu : float
        Covariance compatibility coefficient.
    average_group_size : float
        Mean size of the condensed groups.
    """
    rng = check_random_state(random_state)
    model = condense_dataset(data, k, mode, random_state=rng)
    anonymized = generate_anonymized_data(
        model, sampler=sampler, random_state=rng
    )
    mu = covariance_compatibility(data, anonymized)
    return mu, model.average_group_size


def classification_condition(
    train_data: np.ndarray,
    train_labels: np.ndarray,
    test_data: np.ndarray,
    test_labels: np.ndarray,
    k: int,
    mode: str,
    n_neighbors: int = 1,
    sampler="uniform",
    random_state=None,
) -> ConditionResult:
    """Accuracy of k-NN trained on per-class condensed data (§2.3).

    Parameters
    ----------
    train_data, train_labels:
        Training records and labels.
    test_data, test_labels:
        Held-out records and labels the classifier is scored on.
    k:
        Indistinguishability level.
    mode:
        ``"static"`` or ``"dynamic"``.
    n_neighbors:
        k of the k-NN classifier.
    sampler:
        Per-eigenvector sampler name or callable.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    ConditionResult
        Test accuracy and average condensed group size.
    """
    condenser = ClasswiseCondenser(
        k, mode=mode, sampler=sampler,
        small_class_policy="single_group", random_state=random_state,
    )
    anonymized, anonymized_labels = condenser.fit_generate(
        train_data, train_labels
    )
    classifier = KNeighborsClassifier(n_neighbors=n_neighbors)
    classifier.fit(anonymized, anonymized_labels)
    accuracy = classifier.score(test_data, test_labels)
    return ConditionResult(
        accuracy=accuracy,
        average_group_size=condenser.average_group_size,
    )


def regression_condition(
    train_data: np.ndarray,
    train_targets: np.ndarray,
    test_data: np.ndarray,
    test_targets: np.ndarray,
    k: int,
    mode: str,
    n_neighbors: int = 1,
    tol: float = 1.0,
    sampler="uniform",
    target_handling: str = "classwise",
    random_state=None,
) -> ConditionResult:
    """Tolerance accuracy of k-NN regression on condensed data.

    Two ways of carrying the target through condensation:

    * ``target_handling="classwise"`` (default, the paper's §2.3 recipe
      applied to Abalone's integer ring counts): every distinct target
      value is treated as a class, condensation runs per class, and the
      anonymized records keep their exact target values.
    * ``target_handling="joint"``: the target joins the attribute space
      for condensation and is regenerated along with the attributes —
      appropriate for genuinely continuous targets, at the cost of
      generation noise on the target itself.

    Parameters
    ----------
    train_data, train_targets:
        Training records and numeric targets.
    test_data, test_targets:
        Held-out records and targets the regressor is scored on.
    k:
        Indistinguishability level.
    mode:
        ``"static"`` or ``"dynamic"``.
    n_neighbors:
        k of the k-NN regressor.
    tol:
        Acceptance band of the tolerance-accuracy score.
    sampler:
        Per-eigenvector sampler name or callable.
    target_handling:
        ``"classwise"`` or ``"joint"`` (see above).
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    ConditionResult
        Tolerance accuracy and average condensed group size.

    Raises
    ------
    ValueError
        If ``target_handling`` is unknown.
    """
    rng = check_random_state(random_state)
    if target_handling == "classwise":
        condenser = ClasswiseCondenser(
            k, mode=mode, sampler=sampler,
            small_class_policy="single_group", random_state=rng,
        )
        anonymized_data, anonymized_targets = condenser.fit_generate(
            train_data, train_targets
        )
        anonymized_targets = anonymized_targets.astype(float)
        average_group_size = condenser.average_group_size
    elif target_handling == "joint":
        joint = np.column_stack([train_data, train_targets])
        model = condense_dataset(joint, k, mode, random_state=rng)
        anonymized_joint = generate_anonymized_data(
            model, sampler=sampler, random_state=rng
        )
        anonymized_data = anonymized_joint[:, :-1]
        anonymized_targets = anonymized_joint[:, -1]
        average_group_size = model.average_group_size
    else:
        raise ValueError(
            "target_handling must be 'classwise' or 'joint', "
            f"got {target_handling!r}"
        )
    regressor = KNeighborsRegressor(n_neighbors=n_neighbors)
    regressor.fit(anonymized_data, anonymized_targets)
    accuracy = regressor.score(test_data, test_targets, tol=tol)
    return ConditionResult(
        accuracy=accuracy,
        average_group_size=average_group_size,
    )


def baseline_condition(
    train_data: np.ndarray,
    train_targets: np.ndarray,
    test_data: np.ndarray,
    test_targets: np.ndarray,
    task: str,
    n_neighbors: int = 1,
    tol: float = 1.0,
) -> float:
    """Accuracy of the same k-NN estimator on the *original* data.

    The paper's horizontal "no perturbation" line.

    Parameters
    ----------
    train_data, train_targets:
        Training records and targets.
    test_data, test_targets:
        Held-out records and targets.
    task:
        ``"classification"`` or ``"regression"``.
    n_neighbors:
        k of the k-NN estimator.
    tol:
        Acceptance band for regression scoring; ignored for
        classification.

    Returns
    -------
    float
        Test accuracy (tolerance accuracy for regression).

    Raises
    ------
    ValueError
        If ``task`` is unknown.
    """
    if task == "classification":
        classifier = KNeighborsClassifier(n_neighbors=n_neighbors)
        classifier.fit(train_data, train_targets)
        return classifier.score(test_data, test_targets)
    if task != "regression":
        raise ValueError(
            f"task must be 'classification' or 'regression', got {task!r}"
        )
    regressor = KNeighborsRegressor(n_neighbors=n_neighbors)
    regressor.fit(train_data, train_targets.astype(float))
    return regressor.score(test_data, test_targets.astype(float), tol=tol)


@dataclass
class FigurePoint:
    """One group-size point of a paper figure (both panels).

    Attributes mirror the figure series: accuracies for static /
    dynamic condensation and the original-data baseline, plus μ for
    static / dynamic.
    """

    k: int
    accuracy_static: float
    accuracy_dynamic: float
    accuracy_original: float
    mu_static: float
    mu_dynamic: float
    group_size_static: float
    group_size_dynamic: float


def run_figure_point(
    dataset: Dataset,
    k: int,
    n_neighbors: int = 1,
    test_size: float = 0.25,
    n_trials: int = 3,
    tol: float = 1.0,
    standardize: bool = True,
    random_state=None,
) -> FigurePoint:
    """Evaluate one group size of a paper figure, averaged over trials.

    Each trial uses a fresh split, condensation and generation seed; the
    reported numbers are trial means, mirroring the paper's plotted
    points.

    Parameters
    ----------
    dataset:
        Labelled data set to evaluate.
    k:
        Indistinguishability level for this point.
    n_neighbors:
        k of the k-NN estimator.
    test_size:
        Held-out fraction per trial.
    n_trials:
        Number of independent trials averaged.
    tol:
        Acceptance band for regression data sets.
    standardize:
        Whether to z-score attributes on the training split first.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    FigurePoint
        Trial-mean accuracies, μ values and group sizes at ``k``.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    rng = check_random_state(random_state)
    accumulators = {
        "accuracy_static": [], "accuracy_dynamic": [],
        "accuracy_original": [], "mu_static": [], "mu_dynamic": [],
        "size_static": [], "size_dynamic": [],
    }
    for __ in range(n_trials):
        trial_seed = derive_seed(rng)
        trial_rng = check_random_state(trial_seed)
        stratify = (
            dataset.target if dataset.task == "classification" else None
        )
        train_data, test_data, train_target, test_target = train_test_split(
            dataset.data, dataset.target, test_size=test_size,
            stratify=stratify, random_state=trial_rng,
        )
        if standardize:
            scaler = StandardScaler().fit(train_data)
            train_data = scaler.transform(train_data)
            test_data = scaler.transform(test_data)
        if dataset.task == "classification":
            static = classification_condition(
                train_data, train_target, test_data, test_target,
                k=k, mode="static", n_neighbors=n_neighbors,
                random_state=trial_rng,
            )
            dynamic = classification_condition(
                train_data, train_target, test_data, test_target,
                k=k, mode="dynamic", n_neighbors=n_neighbors,
                random_state=trial_rng,
            )
        else:
            static = regression_condition(
                train_data, train_target.astype(float), test_data,
                test_target.astype(float), k=k, mode="static",
                n_neighbors=n_neighbors, tol=tol, random_state=trial_rng,
            )
            dynamic = regression_condition(
                train_data, train_target.astype(float), test_data,
                test_target.astype(float), k=k, mode="dynamic",
                n_neighbors=n_neighbors, tol=tol, random_state=trial_rng,
            )
        original = baseline_condition(
            train_data, train_target, test_data, test_target,
            task=dataset.task, n_neighbors=n_neighbors, tol=tol,
        )
        mu_static, __ = measure_compatibility(
            train_data, k, "static", random_state=trial_rng
        )
        mu_dynamic, __ = measure_compatibility(
            train_data, k, "dynamic", random_state=trial_rng
        )
        accumulators["accuracy_static"].append(static.accuracy)
        accumulators["accuracy_dynamic"].append(dynamic.accuracy)
        accumulators["accuracy_original"].append(original)
        accumulators["mu_static"].append(mu_static)
        accumulators["mu_dynamic"].append(mu_dynamic)
        accumulators["size_static"].append(static.average_group_size)
        accumulators["size_dynamic"].append(dynamic.average_group_size)
    mean = {key: float(np.mean(values))
            for key, values in accumulators.items()}
    return FigurePoint(
        k=k,
        accuracy_static=mean["accuracy_static"],
        accuracy_dynamic=mean["accuracy_dynamic"],
        accuracy_original=mean["accuracy_original"],
        mu_static=mean["mu_static"],
        mu_dynamic=mean["mu_dynamic"],
        group_size_static=mean["size_static"],
        group_size_dynamic=mean["size_dynamic"],
    )

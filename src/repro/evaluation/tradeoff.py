"""Privacy-utility trade-off curves.

The paper's central dial is the group size ``k``: larger groups mean
more privacy (lower disclosure) and more information loss.  This module
computes the full frontier for a labelled data set — per k: downstream
accuracy, covariance compatibility, structural and empirical disclosure
— so a publisher can pick an operating point with the numbers in hand
(see ``examples/medical_records_release.py`` for the workflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.condensation import create_condensed_groups
from repro.core.condenser import ClasswiseCondenser
from repro.evaluation.reporting import format_table
from repro.linalg.rng import check_random_state, derive_seed
from repro.metrics.compatibility import covariance_compatibility
from repro.neighbors.knn import KNeighborsClassifier
from repro.preprocessing.scalers import StandardScaler
from repro.preprocessing.splits import train_test_split
from repro.privacy.attacks import linkage_attack
from repro.privacy.metrics import privacy_report


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point of the privacy-utility frontier."""

    k: int
    accuracy: float
    mu: float
    structural_disclosure: float
    empirical_disclosure: float
    group_linkage_rate: float


@dataclass
class TradeoffCurve:
    """The frontier: one :class:`TradeoffPoint` per requested k."""

    baseline_accuracy: float
    points: list[TradeoffPoint] = field(default_factory=list)

    def series(self, name: str) -> np.ndarray:
        """Extract one column (e.g. ``"accuracy"``) across points."""
        return np.array([getattr(point, name) for point in self.points])

    def table(self) -> str:
        """ASCII rendering, baseline included in the title."""
        rows = [
            [point.k,
             f"{point.accuracy:.4f}",
             f"{point.mu:.4f}",
             f"{point.empirical_disclosure:.4f}",
             f"{point.structural_disclosure:.4f}"]
            for point in self.points
        ]
        return format_table(
            ["k", "accuracy", "mu", "empirical disclosure",
             "1/k-style bound"],
            rows,
            title=(
                "privacy-utility frontier "
                f"(baseline accuracy {self.baseline_accuracy:.4f})"
            ),
        )

    def recommend(self, max_disclosure: float) -> TradeoffPoint | None:
        """Highest-utility point meeting a disclosure budget.

        Returns the point with the best accuracy among those whose
        empirical disclosure is at most ``max_disclosure``, or ``None``
        if no point qualifies.
        """
        eligible = [
            point for point in self.points
            if point.empirical_disclosure <= max_disclosure
        ]
        if not eligible:
            return None
        return max(eligible, key=lambda point: point.accuracy)


def tradeoff_curve(
    data: np.ndarray,
    labels: np.ndarray,
    group_sizes,
    n_neighbors: int = 1,
    test_size: float = 0.25,
    standardize: bool = True,
    random_state=None,
) -> TradeoffCurve:
    """Compute the privacy-utility frontier for a labelled data set.

    Parameters
    ----------
    data, labels:
        The labelled data set.
    group_sizes:
        Iterable of k values forming the curve.
    n_neighbors:
        k of the k-NN classifier.
    test_size:
        Held-out fraction of the single stratified split.
    standardize:
        Whether to z-score attributes on the training split.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    TradeoffCurve
        Accuracy and empirical-disclosure points per k, plus the
        original-data baseline accuracy.
    """
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels)
    rng = check_random_state(random_state)
    train_x, test_x, train_y, test_y = train_test_split(
        data, labels, test_size=test_size, stratify=labels,
        random_state=derive_seed(rng),
    )
    if standardize:
        scaler = StandardScaler().fit(train_x)
        train_x = scaler.transform(train_x)
        test_x = scaler.transform(test_x)
    baseline = KNeighborsClassifier(n_neighbors=n_neighbors).fit(
        train_x, train_y
    ).score(test_x, test_y)
    curve = TradeoffCurve(baseline_accuracy=baseline)
    for k in sorted(set(int(k) for k in group_sizes)):
        condenser = ClasswiseCondenser(
            k, small_class_policy="single_group",
            random_state=derive_seed(rng),
        )
        anonymized, anonymized_labels = condenser.fit_generate(
            train_x, train_y
        )
        accuracy = KNeighborsClassifier(n_neighbors=n_neighbors).fit(
            anonymized, anonymized_labels
        ).score(test_x, test_y)
        mu = covariance_compatibility(train_x, anonymized)
        model = create_condensed_groups(
            train_x, k, random_state=derive_seed(rng)
        )
        attack = linkage_attack(
            train_x, model, random_state=derive_seed(rng)
        )
        report = privacy_report(model)
        curve.points.append(TradeoffPoint(
            k=k,
            accuracy=accuracy,
            mu=mu,
            structural_disclosure=report.expected_disclosure,
            empirical_disclosure=attack.expected_record_disclosure,
            group_linkage_rate=attack.group_linkage_rate,
        ))
    return curve

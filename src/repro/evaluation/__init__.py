"""Experiment harness reproducing the paper's evaluation (§4)."""

from repro.evaluation.protocol import (
    ConditionResult,
    FigurePoint,
    baseline_condition,
    classification_condition,
    condense_dataset,
    measure_compatibility,
    regression_condition,
    run_figure_point,
)
from repro.evaluation.crossval import (
    CrossValidationResult,
    cross_validated_accuracy,
)
from repro.evaluation.reporting import format_series, format_table
from repro.evaluation.significance import (
    PairedComparison,
    bootstrap_mean_difference_ci,
    compare_paired_scores,
    paired_permutation_test,
)
from repro.evaluation.sweep import (
    DEFAULT_GROUP_SIZES,
    FigureResult,
    run_group_size_sweep,
)
from repro.evaluation.tradeoff import (
    TradeoffCurve,
    TradeoffPoint,
    tradeoff_curve,
)

__all__ = [
    "ConditionResult",
    "FigurePoint",
    "baseline_condition",
    "classification_condition",
    "condense_dataset",
    "measure_compatibility",
    "regression_condition",
    "run_figure_point",
    "CrossValidationResult",
    "cross_validated_accuracy",
    "PairedComparison",
    "bootstrap_mean_difference_ci",
    "compare_paired_scores",
    "paired_permutation_test",
    "format_series",
    "format_table",
    "DEFAULT_GROUP_SIZES",
    "FigureResult",
    "run_group_size_sweep",
    "TradeoffCurve",
    "TradeoffPoint",
    "tradeoff_curve",
]

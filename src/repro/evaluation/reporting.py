"""Plain-text reporting helpers shared by the benches and examples."""

from __future__ import annotations


def format_table(headers, rows, title: str | None = None) -> str:
    """Render an ASCII table with column alignment.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Sequence of rows; each cell is stringified.
    title:
        Optional heading line above the table.

    Returns
    -------
    str
        The formatted table, newline-joined.
    """
    headers = [str(header) for header in headers]
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are "
                f"{len(headers)} headers"
            )
    widths = [
        max(len(headers[column]),
            *(len(row[column]) for row in rendered_rows))
        if rendered_rows else len(headers[column])
        for column in range(len(headers))
    ]
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(header.ljust(width)
                   for header, width in zip(headers, widths))
    )
    lines.append(separator)
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.rjust(width)
                       for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(name: str, xs, ys, precision: int = 4) -> str:
    """One-line rendering of a named (x, y) series.

    Parameters
    ----------
    name:
        Series label prefixed to the line.
    xs, ys:
        Paired iterables of x values and y values.
    precision:
        Decimal places for the y values.

    Returns
    -------
    str
        ``"name: x1:y1, x2:y2, ..."``.
    """
    pairs = ", ".join(
        f"{x}:{y:.{precision}f}" for x, y in zip(xs, ys)
    )
    return f"{name}: {pairs}"

"""Cross-validated condensation evaluation.

The paper reports single sweeps; for tighter confidence this module
runs the same classification protocol under stratified k-fold
cross-validation, giving per-fold accuracies for the condensed and
original conditions plus a paired summary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.condenser import ClasswiseCondenser
from repro.linalg.rng import check_random_state, derive_seed
from repro.neighbors.knn import KNeighborsClassifier
from repro.preprocessing.scalers import StandardScaler
from repro.preprocessing.splits import StratifiedKFold


@dataclass(frozen=True)
class CrossValidationResult:
    """Paired per-fold accuracies for condensed vs original training.

    Attributes
    ----------
    condensed_scores, original_scores:
        Per-fold test accuracies (aligned by fold).
    """

    condensed_scores: np.ndarray
    original_scores: np.ndarray

    @property
    def n_folds(self) -> int:
        """Number of folds evaluated."""
        return self.condensed_scores.shape[0]

    @property
    def condensed_mean(self) -> float:
        """Mean accuracy of the condensed condition."""
        return float(self.condensed_scores.mean())

    @property
    def original_mean(self) -> float:
        """Mean accuracy of the original-data condition."""
        return float(self.original_scores.mean())

    @property
    def mean_gap(self) -> float:
        """Mean paired difference (original − condensed)."""
        return float(
            (self.original_scores - self.condensed_scores).mean()
        )

    @property
    def gap_stderr(self) -> float:
        """Standard error of the paired difference."""
        differences = self.original_scores - self.condensed_scores
        if differences.shape[0] < 2:
            return 0.0
        return float(
            differences.std(ddof=1) / np.sqrt(differences.shape[0])
        )


def cross_validated_accuracy(
    data: np.ndarray,
    labels: np.ndarray,
    k: int,
    mode: str = "static",
    n_neighbors: int = 1,
    n_splits: int = 5,
    standardize: bool = True,
    random_state=None,
) -> CrossValidationResult:
    """Stratified k-fold evaluation of condensation for classification.

    Each fold: fit the scaler and the per-class condensation on the
    training portion, train k-NN once on the anonymized output and once
    on the original training records, and score both on the held-out
    fold.

    Parameters
    ----------
    data, labels:
        The labelled data set.
    k:
        Indistinguishability level for condensation.
    mode:
        ``"static"`` or ``"dynamic"`` per-class condensation.
    n_neighbors, n_splits, standardize, random_state:
        Protocol knobs.

    Returns
    -------
    CrossValidationResult
        Per-fold scores for condensed and original training data.
    """
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels)
    rng = check_random_state(random_state)
    splitter = StratifiedKFold(
        n_splits=n_splits, random_state=derive_seed(rng)
    )
    condensed_scores = []
    original_scores = []
    for train_index, test_index in splitter.split(data, labels):
        train_x, test_x = data[train_index], data[test_index]
        train_y, test_y = labels[train_index], labels[test_index]
        if standardize:
            scaler = StandardScaler().fit(train_x)
            train_x = scaler.transform(train_x)
            test_x = scaler.transform(test_x)
        condenser = ClasswiseCondenser(
            k, mode=mode, small_class_policy="single_group",
            random_state=derive_seed(rng),
        )
        anonymized, anonymized_labels = condenser.fit_generate(
            train_x, train_y
        )
        condensed_knn = KNeighborsClassifier(
            n_neighbors=n_neighbors
        ).fit(anonymized, anonymized_labels)
        original_knn = KNeighborsClassifier(
            n_neighbors=n_neighbors
        ).fit(train_x, train_y)
        condensed_scores.append(condensed_knn.score(test_x, test_y))
        original_scores.append(original_knn.score(test_x, test_y))
    return CrossValidationResult(
        condensed_scores=np.array(condensed_scores),
        original_scores=np.array(original_scores),
    )

"""Group-size sweeps: the paper's figures as data structures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.base import Dataset
from repro.evaluation.protocol import FigurePoint, run_figure_point
from repro.evaluation.reporting import format_table
from repro.linalg.rng import check_random_state, derive_seed

#: The group-size grid used by every figure bench.  Covers the paper's
#: 0-50 X axes, including the small-group regime where the dynamic
#: method degrades (k=2..10) and the modest sizes the paper calls most
#: useful (15-50).
DEFAULT_GROUP_SIZES = (2, 5, 10, 15, 20, 25, 30, 40, 50)


@dataclass
class FigureResult:
    """A full reproduced figure: one :class:`FigurePoint` per group size.

    The two panels of each paper figure read directly off the points:
    panel (a) is ``accuracy_*`` against group size, panel (b) is
    ``mu_*`` against group size.
    """

    dataset_name: str
    points: list[FigurePoint] = field(default_factory=list)

    def series(self, name: str) -> np.ndarray:
        """Extract one series (e.g. ``"accuracy_static"``) across points."""
        return np.array([getattr(point, name) for point in self.points])

    @property
    def group_sizes(self) -> np.ndarray:
        """The swept k values."""
        return np.array([point.k for point in self.points])

    def accuracy_table(self) -> str:
        """Panel (a) as an ASCII table."""
        headers = ["k", "avg size (static)", "avg size (dynamic)",
                   "static", "dynamic", "original"]
        rows = [
            [point.k,
             f"{point.group_size_static:.1f}",
             f"{point.group_size_dynamic:.1f}",
             f"{point.accuracy_static:.4f}",
             f"{point.accuracy_dynamic:.4f}",
             f"{point.accuracy_original:.4f}"]
            for point in self.points
        ]
        title = f"{self.dataset_name}: classification accuracy (panel a)"
        return format_table(headers, rows, title=title)

    def compatibility_table(self) -> str:
        """Panel (b) as an ASCII table."""
        headers = ["k", "mu (static)", "mu (dynamic)"]
        rows = [
            [point.k, f"{point.mu_static:.4f}", f"{point.mu_dynamic:.4f}"]
            for point in self.points
        ]
        title = (
            f"{self.dataset_name}: covariance compatibility (panel b)"
        )
        return format_table(headers, rows, title=title)

    def save_csv(self, path) -> None:
        """Persist all series as a headered CSV, one row per k.

        Columns: ``k`` plus every :class:`FigurePoint` field — so the
        exact numbers behind a reproduced figure can be archived or
        re-plotted elsewhere.
        """
        import csv

        fields = [
            "k", "group_size_static", "group_size_dynamic",
            "accuracy_static", "accuracy_dynamic", "accuracy_original",
            "mu_static", "mu_dynamic",
        ]
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(fields)
            for point in self.points:
                writer.writerow(
                    [getattr(point, field) for field in fields]
                )

    def summary(self) -> dict:
        """Headline statistics used by the benches' shape assertions."""
        return {
            "min_mu_static": float(self.series("mu_static").min()),
            "min_mu_dynamic": float(self.series("mu_dynamic").min()),
            "max_accuracy_gap_static": float(
                (self.series("accuracy_original")
                 - self.series("accuracy_static")).max()
            ),
            "max_accuracy_gap_dynamic": float(
                (self.series("accuracy_original")
                 - self.series("accuracy_dynamic")).max()
            ),
            "baseline_accuracy": float(
                self.series("accuracy_original").mean()
            ),
        }


def run_group_size_sweep(
    dataset: Dataset,
    group_sizes=DEFAULT_GROUP_SIZES,
    n_neighbors: int = 1,
    test_size: float = 0.25,
    n_trials: int = 3,
    tol: float = 1.0,
    random_state=None,
) -> FigureResult:
    """Reproduce one paper figure: sweep k, measuring both panels.

    Parameters
    ----------
    dataset:
        Labelled data set the figure is drawn over.
    group_sizes:
        Iterable of k values to sweep.
    n_neighbors:
        k of the k-NN estimator.
    test_size:
        Held-out fraction per trial.
    n_trials:
        Trials averaged per point.
    tol:
        Acceptance band for regression data sets.
    random_state:
        Anything accepted by
        :func:`repro.linalg.rng.check_random_state`.

    Returns
    -------
    FigureResult
        One :class:`FigurePoint` per swept k, in order.
    """
    rng = check_random_state(random_state)
    result = FigureResult(dataset_name=dataset.name)
    for k in group_sizes:
        point = run_figure_point(
            dataset, int(k), n_neighbors=n_neighbors, test_size=test_size,
            n_trials=n_trials, tol=tol, random_state=derive_seed(rng),
        )
        result.points.append(point)
    return result

"""Command-line interface for the condensation pipeline.

The subcommands mirror the deployment boundary of the paper's trust
model::

    repro condense  data.csv model.json --k 20      # trusted side
    repro generate  model.json release.csv          # either side
    repro anonymize data.csv release.csv --k 20     # both steps at once
    repro report    data.csv release.csv            # utility check
    repro recover   waldir/ model.json              # crash recovery
    repro recover   waldir/ --dry-run               # preview, read-only
    repro wal-inspect waldir/                       # frame-by-frame dump
    repro serve     --port 8000 --shards 4 --k 10   # HTTP service
    repro loadgen   http://127.0.0.1:8000           # serving benchmark
    repro lint      src/ tests/                     # static analysis
    repro telemetry trace.jsonl                     # summarize a trace

``anonymize`` accepts ``--target-column`` to run per-class condensation
(the paper's §2.3) and carry labels into the release.  ``condense`` and
``anonymize`` accept ``--shards`` / ``--workers`` to run condensation
on the sharded parallel engine (see ``docs/parallel.md``).  All
commands are deterministic under ``--seed``; sharded runs additionally
never depend on the worker count, only on the shard count.

``condense --checkpoint-dir DIR`` makes the run durable (see
``docs/durability.md``): without ``--shards`` the records are ingested
through a write-ahead-logged dynamic condenser that snapshots every
``--checkpoint-every`` operations; with ``--shards`` each completed
shard is checkpointed so an identical re-run resumes instead of
recomputing.  ``repro recover`` rebuilds the condensed model from a
durability directory after a crash; ``repro recover --dry-run``
previews the same rebuild without writing anything (not even the WAL
tail repair), and ``repro wal-inspect`` dumps the log frame by frame
with CRC status.  ``condense --fsync-every N`` batches WAL fsyncs
(group commit) for ingest throughput, and ``condense --batch-size N``
ingests the durable stream in vectorized blocks (one ``batch`` WAL
entry per block — see ``docs/api.md``).

``repro serve`` runs the long-lived anonymization service (see
``docs/serving.md``): a threading HTTP server over ``--shards``
durable condenser shards, each journaling to its own WAL under
``--checkpoint-dir`` so a restart recovers the exact pre-shutdown
model.  ``repro loadgen`` replays a UCI-twin stream against a running
server at ``--qps`` and writes per-endpoint latency percentiles to
``BENCH_serve.json``.

Every subcommand also accepts ``--metrics-out`` / ``--trace-out`` to
capture the run's telemetry (Prometheus text and JSON-lines span
events respectively — see ``docs/telemetry.md``), plus ``--quiet`` /
``--verbose`` to control logging.  Without the telemetry flags the
instrumented code paths run through the no-op pipeline.
"""

from __future__ import annotations

import argparse
import logging
import sys

import numpy as np

from repro import telemetry
from repro.analysis.cli import add_lint_arguments, run_lint
from repro.core.coarsen import coarsen_model
from repro.core.condensation import create_condensed_groups
from repro.core.condenser import (
    ClasswiseCondenser,
    DynamicCondenser,
    StaticCondenser,
)
from repro.core.generation import generate_anonymized_data
from repro.evaluation.reporting import format_table
from repro.io.csv import read_records, write_records
from repro.io.model_store import load_model, save_model
from repro.privacy.attacks import (
    attribute_disclosure_attack,
    linkage_attack,
)
from repro.privacy.metrics import privacy_report
from repro.quality.report import utility_report
from repro.telemetry import write_events, write_prometheus
from repro.telemetry.summary import format_summary, summarize_trace

_logger = logging.getLogger("repro")


def _build_common_parser() -> argparse.ArgumentParser:
    """Parent parser with the flags every subcommand shares."""
    common = argparse.ArgumentParser(add_help=False)
    observability = common.add_argument_group("observability")
    observability.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write run metrics to PATH in Prometheus text format")
    observability.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write span events to PATH as JSON lines")
    verbosity = observability.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log errors")
    verbosity.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log progress (-v: info, -vv: debug)")
    return common


def _configure_logging(arguments) -> None:
    """Set the 'repro' logger level from the --quiet/--verbose flags."""
    if getattr(arguments, "quiet", False):
        level = logging.ERROR
    elif getattr(arguments, "verbose", 0) >= 2:
        level = logging.DEBUG
    elif getattr(arguments, "verbose", 0) == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    _logger.setLevel(level)
    # Tests invoke main() repeatedly in one process: attach the stream
    # handler only once.
    if not _logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(name)s %(levelname)s: %(message)s")
        )
        _logger.addHandler(handler)


def _add_condense_arguments(parser):
    parser.add_argument("--k", type=int, required=True,
                        help="indistinguishability level (minimum group "
                             "size)")
    parser.add_argument("--strategy", default="random",
                        choices=["random", "mdav", "kmeans"],
                        help="group seeding strategy (default: random, "
                             "the paper's)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (default: 0)")
    parser.add_argument("--shards", type=int, default=None,
                        metavar="N",
                        help="condense on the sharded parallel engine "
                             "with N locality-preserving shards "
                             "(default: serial)")
    parser.add_argument("--workers", type=int, default=None,
                        metavar="N",
                        help="worker-pool size for --shards (default: "
                             "one per shard, CPU-capped); implies "
                             "--shards N when --shards is omitted")


def _add_durability_arguments(parser):
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="make the run durable: WAL-journaled "
                             "ingest (serial) or per-shard result "
                             "checkpoints (--shards); recover with "
                             "'repro recover DIR'")
    parser.add_argument("--checkpoint-every", type=int, default=256,
                        metavar="N",
                        help="snapshot cadence for the durable ingest "
                             "path, in WAL entries (default: 256)")
    parser.add_argument("--fsync-every", type=int, default=1,
                        metavar="N",
                        help="group-commit batch: fsync the WAL every "
                             "N appends (default: 1 = every append; "
                             "larger values trade the newest N-1 "
                             "operations after a crash for ingest "
                             "throughput)")
    parser.add_argument("--batch-size", type=int, default=1,
                        metavar="N",
                        help="vectorized ingest block size for the "
                             "durable serial path: absorb N records "
                             "per distance matrix and journal one "
                             "'batch' WAL entry per block (default: "
                             "1 = record-at-a-time)")


def _condense_durable(arguments, data) -> int:
    """Durable serial condense: WAL-journaled dynamic ingest."""
    condenser = DynamicCondenser(
        arguments.k, strategy=arguments.strategy,
        random_state=arguments.seed,
        wal_dir=arguments.checkpoint_dir,
        checkpoint_every=arguments.checkpoint_every,
        fsync_every=arguments.fsync_every,
        batch_size=arguments.batch_size,
    )
    condenser.fit()
    condenser.partial_fit(data)
    condenser.checkpoint()
    condenser.close()
    save_model(arguments.output, condenser.model_)
    report = privacy_report(condenser.model_)
    print(f"condensed {condenser.model_.total_count} records into "
          f"{report.n_groups} groups "
          f"(k={arguments.k}, achieved {report.achieved_k})")
    print(f"durable state in {arguments.checkpoint_dir} "
          f"(position {condenser.position})")
    print(f"wrote model to {arguments.output}")
    return 0


def _command_condense(arguments) -> int:
    durable_serial = (
        arguments.checkpoint_dir is not None
        and arguments.shards is None and arguments.workers is None
    )
    if arguments.batch_size > 1 and not durable_serial:
        print("error: --batch-size applies to the durable serial path "
              "(--checkpoint-dir without --shards/--workers); static "
              "condensation already sees the whole database at once",
              file=sys.stderr)
        return 2
    data, __ = read_records(arguments.input)
    _logger.info("read %d records from %s", data.shape[0],
                 arguments.input)
    if durable_serial:
        return _condense_durable(arguments, data)
    condenser = StaticCondenser(
        arguments.k, strategy=arguments.strategy,
        random_state=arguments.seed,
        n_shards=arguments.shards, n_workers=arguments.workers,
        checkpoint_dir=arguments.checkpoint_dir,
    ).fit(data)
    save_model(arguments.output, condenser.model_)
    report = privacy_report(condenser.model_)
    print(f"condensed {condenser.model_.total_count} records into "
          f"{report.n_groups} groups "
          f"(k={arguments.k}, achieved {report.achieved_k})")
    print(f"wrote model to {arguments.output}")
    return 0


def _recover_dry_run(directory):
    """Read-only equivalent of ``DurabilityManager.recover()``.

    Builds the same :class:`~repro.durability.RecoveredState` from the
    newest valid snapshot plus the WAL tail, but never opens the WAL
    for append — so a torn tail is *observed*, not repaired, and the
    directory stays byte-identical.
    """
    from repro.durability import (
        RecoveredState,
        latest_snapshot,
        replay_directory,
    )

    info = latest_snapshot(directory)
    base_seq = info.seq if info is not None else 0
    entries = list(replay_directory(directory, after_seq=base_seq))
    last_seq = entries[-1][0] if entries else base_seq
    return RecoveredState(
        snapshot_state=info.state if info is not None else None,
        entries=entries,
        last_seq=last_seq,
    )


def _command_recover(arguments) -> int:
    from repro.durability import (
        DurabilityManager,
        RecoveryError,
        rebuild_maintainer,
        recovered_window,
    )

    if arguments.output is None and not arguments.dry_run:
        print("error: an output model path is required unless "
              "--dry-run is given", file=sys.stderr)
        return 2
    try:
        if arguments.dry_run:
            recovered = _recover_dry_run(arguments.directory)
            maintainer, position = rebuild_maintainer(recovered)
        else:
            manager = DurabilityManager(arguments.directory)
            try:
                recovered = manager.recover()
                maintainer, position = rebuild_maintainer(recovered)
            finally:
                manager.close()
    except RecoveryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    model = maintainer.to_model()
    source = ("snapshot + WAL tail"
              if recovered.snapshot_state is not None else "WAL only")
    mode = "dry run: would recover" if arguments.dry_run else "recovered"
    print(f"{mode} {model.n_groups} groups from {source} "
          f"(last WAL seq {recovered.last_seq}, "
          f"{len(recovered.entries)} tail entries)")
    print(f"resume the upstream feed from position {position}")
    window = recovered_window(recovered)
    if window is not None:
        print(f"sliding-window state: window={window}; re-feed the "
              f"last {min(position, window)} records via "
              "restore_window() before pushing")
    if arguments.dry_run:
        print("dry run: no model written, directory left untouched")
        return 0
    save_model(arguments.output, model)
    print(f"wrote model to {arguments.output}")
    return 0


def _command_wal_inspect(arguments) -> int:
    import json

    from repro.durability import inspect_frames, list_segments

    if not list_segments(arguments.directory):
        print(f"error: no WAL segments in {arguments.directory}",
              file=sys.stderr)
        return 1
    frames = list(inspect_frames(arguments.directory))
    if arguments.json:
        print(json.dumps(frames, indent=2))
        return 0
    rows = [
        [
            "-" if frame["seq"] is None else str(frame["seq"]),
            frame["status"],
            frame["kind"] or "-",
            frame["segment"],
            str(frame["offset"]),
            str(frame["length"]),
        ]
        for frame in frames
    ]
    print(format_table(
        ["seq", "status", "kind", "segment", "offset", "bytes"],
        rows,
        title=f"WAL frames in {arguments.directory}",
    ))
    unreplayable = sum(
        1 for frame in frames if frame["status"] != "ok"
    )
    print(f"{len(frames)} frames, {unreplayable} beyond the durable "
          "frontier")
    return 0


def _command_generate(arguments) -> int:
    model = load_model(arguments.model)
    anonymized = generate_anonymized_data(
        model, sampler=arguments.sampler, random_state=arguments.seed
    )
    write_records(arguments.output, anonymized)
    print(f"generated {anonymized.shape[0]} anonymized records "
          f"from {model.n_groups} groups into {arguments.output}")
    return 0


def _command_anonymize(arguments) -> int:
    data, header = read_records(arguments.input)
    _logger.info("read %d records from %s", data.shape[0],
                 arguments.input)
    if arguments.target_column is not None:
        if arguments.target_column not in header:
            print(f"error: column {arguments.target_column!r} not found "
                  f"in {arguments.input}", file=sys.stderr)
            return 1
        target_index = header.index(arguments.target_column)
        attribute_columns = [
            position for position in range(len(header))
            if position != target_index
        ]
        attributes = data[:, attribute_columns]
        labels = data[:, target_index]
        condenser = ClasswiseCondenser(
            arguments.k, strategy=arguments.strategy,
            sampler=arguments.sampler,
            small_class_policy="single_group",
            random_state=arguments.seed,
            n_shards=arguments.shards, n_workers=arguments.workers,
        )
        anonymized, anonymized_labels = condenser.fit_generate(
            attributes, labels
        )
        release = np.column_stack([anonymized, anonymized_labels])
        names = [header[position] for position in attribute_columns]
        names.append(arguments.target_column)
        write_records(arguments.output, release, feature_names=names)
        n_groups = sum(
            model.n_groups for model in condenser.models_.values()
        )
    else:
        condenser = StaticCondenser(
            arguments.k, strategy=arguments.strategy,
            sampler=arguments.sampler, random_state=arguments.seed,
            n_shards=arguments.shards, n_workers=arguments.workers,
        ).fit(data)
        anonymized = condenser.generate()
        write_records(arguments.output, anonymized, feature_names=header)
        n_groups = condenser.model_.n_groups
    print(f"anonymized {data.shape[0]} records via {n_groups} condensed "
          f"groups (k={arguments.k}) into {arguments.output}")
    return 0


def _command_report(arguments) -> int:
    original, __ = read_records(arguments.original)
    anonymized, __ = read_records(arguments.anonymized)
    if original.shape[1] != anonymized.shape[1]:
        print("error: the two files have different attribute counts",
              file=sys.stderr)
        return 1
    report = utility_report(original, anonymized)
    for line in report.summary_lines():
        print(line)
    return 0


def _command_coarsen(arguments) -> int:
    model = load_model(arguments.model)
    try:
        coarse = coarsen_model(model, arguments.k)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    save_model(arguments.output, coarse)
    print(f"coarsened {model.n_groups} groups (k={model.k}) into "
          f"{coarse.n_groups} groups (k={arguments.k}); "
          f"wrote {arguments.output}")
    return 0


def _command_attack(arguments) -> int:
    data, header = read_records(arguments.input)
    model = create_condensed_groups(
        data, arguments.k, random_state=arguments.seed
    )
    linkage = linkage_attack(data, model, random_state=arguments.seed)
    print(f"record-linkage attack at k={arguments.k}:")
    print(f"  group linkage rate:       "
          f"{linkage.group_linkage_rate:.4f}")
    print(f"  record disclosure:        "
          f"{linkage.expected_record_disclosure:.4f} "
          f"(bound 1/k = {1.0 / arguments.k:.4f})")
    print(f"  blind-guess baseline:     "
          f"{linkage.baseline_disclosure:.5f}")
    rows = []
    for attribute, name in enumerate(header):
        result = attribute_disclosure_attack(
            data, model, attribute=attribute,
            random_state=arguments.seed,
        )
        rows.append([
            name,
            f"{result.attack_error:.4f}",
            f"{result.baseline_error:.4f}",
            f"{result.relative_gain:.4f}",
        ])
    print()
    print(format_table(
        ["attribute", "attack error", "baseline error",
         "adversary gain"],
        rows,
        title="attribute-disclosure attack (per hidden attribute)",
    ))
    return 0


def _command_serve(arguments) -> int:
    from repro.serve import (
        AnonymizationHTTPServer,
        ShardedCondensationService,
        install_signal_handlers,
    )

    # /metrics needs a live registry even when no --metrics-out capture
    # was requested, so serving always runs on a real pipeline.
    if not telemetry.enabled():
        telemetry.configure()
    pool = None
    if arguments.pool_workers:
        # Pre-warm the shared pool so co-located condense_sharded jobs
        # (offline re-anonymization against the served shards) skip
        # worker spawn; the service owns it and closes it on shutdown.
        from repro.parallel import get_shared_pool

        pool = get_shared_pool(arguments.pool_workers)
        pool.ensure_workers(arguments.pool_workers)
    if arguments.checkpoint_dir is not None:
        service = ShardedCondensationService.open(
            arguments.checkpoint_dir, arguments.shards, arguments.k,
            strategy=arguments.strategy, sampler=arguments.sampler,
            bootstrap_size=arguments.bootstrap_size,
            checkpoint_every=arguments.checkpoint_every,
            fsync_every=arguments.fsync_every,
            batch_size=arguments.batch_size,
            random_state=arguments.seed,
            worker_pool=pool,
        )
        if service.recovered_shards:
            _logger.info(
                "recovered %d/%d shards from %s (position %d)",
                service.recovered_shards, service.n_shards,
                arguments.checkpoint_dir, service.position,
            )
    else:
        service = ShardedCondensationService(
            arguments.shards, arguments.k,
            strategy=arguments.strategy, sampler=arguments.sampler,
            bootstrap_size=arguments.bootstrap_size,
            batch_size=arguments.batch_size,
            random_state=arguments.seed,
            worker_pool=pool,
        )
    server = AnonymizationHTTPServer(
        (arguments.host, arguments.port), service,
        max_body_bytes=arguments.max_body_bytes,
    )
    install_signal_handlers(server, service)
    if arguments.port_file is not None:
        # Ephemeral-port coordination for tests/CI: publish the bound
        # port so callers using --port 0 can find the server.
        with open(arguments.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{server.server_port}\n")
    print(
        f"serving {service.n_shards} shard(s) at k={service.k} on "
        f"http://{server.server_address[0]}:{server.server_port} "
        f"(durable: {service.root is not None})"
    )
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.close()
    return 0


def _command_loadgen(arguments) -> int:
    from repro.serve import run_loadgen, write_report

    try:
        report = run_loadgen(
            arguments.url, dataset=arguments.dataset,
            duration_seconds=arguments.duration, qps=arguments.qps,
            batch_size=arguments.batch_size,
            generate_n=arguments.generate_n,
            random_state=arguments.seed, timeout=arguments.timeout,
        )
    except (RuntimeError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    path = write_report(report, arguments.out)
    print(f"achieved {report['achieved_qps']} req/s "
          f"(target {report['target_qps']}) over "
          f"{report['duration_seconds']}s, "
          f"{report['n_failures']} failures")
    rows = [
        [endpoint, str(stats["n"]), f"{stats['p50_ms']:.2f}",
         f"{stats['p95_ms']:.2f}", f"{stats['p99_ms']:.2f}"]
        for endpoint, stats in report["endpoints"].items()
    ]
    print(format_table(
        ["endpoint", "requests", "p50 ms", "p95 ms", "p99 ms"],
        rows, title="latency per endpoint",
    ))
    print(f"wrote {path}")
    return 0


def _command_telemetry(arguments) -> int:
    try:
        summary = summarize_trace(arguments.trace)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(format_summary(summary))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser.

    Returns
    -------
    argparse.ArgumentParser
        Parser with one subparser per subcommand; each sets a
        ``handler`` default taking the parsed namespace.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Condensation-based privacy preserving data mining.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    # Shared flags ride on every subparser (parents=), so they are
    # accepted after the subcommand token: repro condense ... -v
    common = _build_common_parser()

    condense = subparsers.add_parser(
        "condense", help="condense a CSV into group statistics (JSON)",
        parents=[common],
    )
    condense.add_argument("input", help="input CSV of numeric records")
    condense.add_argument("output", help="output model JSON")
    _add_condense_arguments(condense)
    _add_durability_arguments(condense)
    condense.set_defaults(handler=_command_condense)

    generate = subparsers.add_parser(
        "generate", help="generate anonymized records from a model",
        parents=[common],
    )
    generate.add_argument("model", help="model JSON from 'condense'")
    generate.add_argument("output", help="output CSV")
    generate.add_argument("--sampler", default="uniform",
                          choices=["uniform", "gaussian"],
                          help="per-eigenvector distribution "
                               "(default: uniform, the paper's)")
    generate.add_argument("--seed", type=int, default=0,
                          help="random seed (default: 0)")
    generate.set_defaults(handler=_command_generate)

    anonymize = subparsers.add_parser(
        "anonymize", help="condense and generate in one step",
        parents=[common],
    )
    anonymize.add_argument("input", help="input CSV of numeric records")
    anonymize.add_argument("output", help="output CSV of anonymized "
                                          "records")
    _add_condense_arguments(anonymize)
    anonymize.add_argument("--sampler", default="uniform",
                           choices=["uniform", "gaussian"],
                           help="per-eigenvector distribution")
    anonymize.add_argument("--target-column", default=None,
                           help="label column: condense per class and "
                                "keep labels in the release")
    anonymize.set_defaults(handler=_command_anonymize)

    report = subparsers.add_parser(
        "report", help="utility report of a release vs its original",
        parents=[common],
    )
    report.add_argument("original", help="original CSV")
    report.add_argument("anonymized", help="anonymized CSV")
    report.set_defaults(handler=_command_report)

    recover = subparsers.add_parser(
        "recover", help="rebuild a condensed model from a durability "
                        "directory (WAL + snapshots)",
        parents=[common],
    )
    recover.add_argument("directory",
                         help="durability directory written by a "
                              "wal_dir= condenser or "
                              "'condense --checkpoint-dir'")
    recover.add_argument("output", nargs="?", default=None,
                         help="output model JSON (optional with "
                              "--dry-run)")
    recover.add_argument("--dry-run", action="store_true",
                         help="report what recovery would rebuild "
                              "without writing a model or repairing "
                              "the WAL tail (fully read-only)")
    recover.set_defaults(handler=_command_recover)

    wal_inspect = subparsers.add_parser(
        "wal-inspect", help="dump a write-ahead log frame by frame "
                            "(seq, CRC status, entry kind, offsets)",
        parents=[common],
    )
    wal_inspect.add_argument(
        "directory", help="WAL directory (same layout as 'recover')"
    )
    wal_inspect.add_argument(
        "--json", action="store_true",
        help="emit the frame descriptors as a JSON array"
    )
    wal_inspect.set_defaults(handler=_command_wal_inspect)

    coarsen = subparsers.add_parser(
        "coarsen", help="raise a model's privacy level (merge groups)",
        parents=[common],
    )
    coarsen.add_argument("model", help="model JSON from 'condense'")
    coarsen.add_argument("output", help="output model JSON")
    coarsen.add_argument("--k", type=int, required=True,
                         help="target indistinguishability level")
    coarsen.set_defaults(handler=_command_coarsen)

    attack = subparsers.add_parser(
        "attack", help="red-team a data set's condensation at level k",
        parents=[common],
    )
    attack.add_argument("input", help="original CSV of numeric records")
    attack.add_argument("--k", type=int, required=True,
                        help="indistinguishability level to evaluate")
    attack.add_argument("--seed", type=int, default=0,
                        help="random seed (default: 0)")
    attack.set_defaults(handler=_command_attack)

    serve = subparsers.add_parser(
        "serve", help="run the anonymization HTTP service over durable "
                      "condenser shards",
        parents=[common],
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: 8000)")
    serve.add_argument("--shards", type=int, default=4,
                       help="condenser shard count (default: 4)")
    serve.add_argument("--k", type=int, default=10,
                       help="indistinguishability level per shard "
                            "(default: 10)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="durability root: one WAL directory per "
                            "shard; restarting against the same DIR "
                            "recovers the exact pre-shutdown model")
    serve.add_argument("--checkpoint-every", type=int, default=256,
                       help="per-shard snapshot cadence in operations "
                            "(default: 256)")
    serve.add_argument("--fsync-every", type=int, default=1,
                       help="per-shard WAL group-commit batch "
                            "(default: 1, fsync every entry)")
    serve.add_argument("--batch-size", type=int, default=1,
                       help="per-shard vectorized ingest block size "
                            "(default: 1, record-at-a-time)")
    serve.add_argument("--bootstrap-size", type=int, default=None,
                       help="records buffered before the shard router "
                            "is fitted (default: max(2*k*shards, "
                            "8*shards))")
    serve.add_argument("--strategy", default="random",
                       choices=["random", "mdav", "kmeans"],
                       help="group seeding strategy (default: random)")
    serve.add_argument("--sampler", default="uniform",
                       choices=["uniform", "gaussian"],
                       help="generation sampler (default: uniform)")
    serve.add_argument("--seed", type=int, default=0,
                       help="root seed for per-shard RNG streams "
                            "(default: 0)")
    serve.add_argument("--max-body-bytes", type=int,
                       default=8 * 1024 * 1024,
                       help="largest accepted /ingest body "
                            "(default: 8 MiB)")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port to PATH after "
                            "binding (for --port 0 coordination)")
    serve.add_argument("--pool-workers", type=int, default=0,
                       metavar="N",
                       help="pre-warm a persistent N-worker pool for "
                            "co-located batch condensation (default: "
                            "0, no pool)")
    serve.set_defaults(handler=_command_serve)

    loadgen = subparsers.add_parser(
        "loadgen", help="replay a UCI-twin stream against a running "
                        "server and write BENCH_serve.json",
        parents=[common],
    )
    loadgen.add_argument("url", help="server root URL, e.g. "
                                     "http://127.0.0.1:8000")
    loadgen.add_argument("--dataset", default="ionosphere",
                         help="twin dataset replayed as the stream "
                              "(default: ionosphere)")
    loadgen.add_argument("--duration", type=float, default=10.0,
                         help="run length in seconds (default: 10)")
    loadgen.add_argument("--qps", type=float, default=50.0,
                         help="target request rate (default: 50)")
    loadgen.add_argument("--batch-size", type=int, default=1,
                         help="records per /ingest request "
                              "(default: 1)")
    loadgen.add_argument("--generate-n", type=int, default=32,
                         help="n for /generate probes (default: 32)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="dataset twin seed (default: 0)")
    loadgen.add_argument("--timeout", type=float, default=10.0,
                         help="per-request socket timeout in seconds "
                              "(default: 10)")
    loadgen.add_argument("--out", default="BENCH_serve.json",
                         help="report path (default: BENCH_serve.json)")
    loadgen.set_defaults(handler=_command_loadgen)

    lint = subparsers.add_parser(
        "lint", help="static analysis: RNG discipline, privacy "
                     "invariant, Python pitfalls",
        parents=[common],
    )
    add_lint_arguments(lint)
    lint.set_defaults(handler=run_lint)

    telemetry_parser = subparsers.add_parser(
        "telemetry", help="summarize a JSON-lines trace written by "
                          "--trace-out",
        parents=[common],
    )
    telemetry_parser.add_argument(
        "trace", help="trace file (JSON lines) from --trace-out"
    )
    telemetry_parser.set_defaults(handler=_command_telemetry)

    return parser


def main(argv=None) -> int:
    """CLI entry point.

    Parameters
    ----------
    argv:
        Argument list; ``sys.argv[1:]`` when ``None``.

    Returns
    -------
    int
        Process exit code of the selected subcommand.
    """
    parser = build_parser()
    arguments = parser.parse_args(argv)
    _configure_logging(arguments)
    metrics_out = getattr(arguments, "metrics_out", None)
    trace_out = getattr(arguments, "trace_out", None)
    if metrics_out is None and trace_out is None:
        # No capture requested: the instrumented paths stay on the
        # no-op pipeline.
        return arguments.handler(arguments)
    pipeline = telemetry.configure()
    try:
        return arguments.handler(arguments)
    finally:
        telemetry.disable()
        if metrics_out is not None:
            write_prometheus(metrics_out, pipeline.registry)
            _logger.info("wrote metrics to %s", metrics_out)
        if trace_out is not None:
            write_events(trace_out, pipeline.finished_spans(),
                         registry=pipeline.registry)
            _logger.info("wrote trace to %s", trace_out)


if __name__ == "__main__":
    sys.exit(main())

"""Per-shard checkpoints for the sharded condensation engine.

A sharded run (:func:`repro.parallel.condense_sharded`) is a bag of
independent shard tasks whose results are additive group statistics.
That makes worker-level durability simple: as each shard completes, the
*coordinator* persists its result; when a run is retried after a crash
or pool failure, completed shards are reloaded instead of recomputed.

Two properties keep this safe:

* **Statistics only.**  A checkpoint holds the shard's ``(Fs, Sc, n)``
  groups and the group-to-record *index* lineage — the same content a
  condensed model's metadata exposes — never record values.
* **Keyed by fingerprint.**  Shard results are only valid for the exact
  ``(data, k, strategy, n_shards, seed)`` combination that produced
  them, so the store namespaces its files by a SHA-256 fingerprint of
  those inputs and ignores files written under any other fingerprint.
  Resumability therefore requires an integer seed: a bare generator's
  draw position cannot be fingerprinted across runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zlib
from pathlib import Path

import numpy as np

from repro import telemetry

#: Shard checkpoint filename pattern.
_SHARD_PATTERN = re.compile(r"^shard-(\d{5})\.json$")


def shard_fingerprint(
    data: np.ndarray, k: int, strategy_name: str, n_shards: int, seed: int
) -> str:
    """Fingerprint of one sharded-run configuration.

    Parameters
    ----------
    data:
        The database being condensed (hashed by content and shape).
    k:
        Indistinguishability level.
    strategy_name:
        Resolved strategy name.
    n_shards:
        Shard count (results depend on it, never on the worker count).
    seed:
        Integer root seed of the run.

    Returns
    -------
    str
        Hex SHA-256 digest identifying the run configuration.
    """
    data = np.ascontiguousarray(np.asarray(data, dtype=float))
    hasher = hashlib.sha256()
    hasher.update(
        f"shape={data.shape}|k={int(k)}|strategy={strategy_name}"
        f"|n_shards={int(n_shards)}|seed={int(seed)}|".encode("utf-8")
    )
    hasher.update(data.tobytes())
    return hasher.hexdigest()


class ShardCheckpointStore:
    """Crash-safe store of completed shard results for one run config.

    Files live under ``directory/<fingerprint-prefix>/`` so different
    run configurations sharing a checkpoint directory never collide.
    Each file uses the same CRC-framed JSON format as the snapshot
    writer and is written atomically (tmp + rename), so a crash during
    a store leaves at worst an ignorable partial tmp file.

    Parameters
    ----------
    directory:
        Root checkpoint directory (created if missing).
    fingerprint:
        Run fingerprint from :func:`shard_fingerprint`.
    """

    def __init__(self, directory, fingerprint: str):
        self.fingerprint = str(fingerprint)
        self.directory = Path(directory) / self.fingerprint[:16]
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, shard_index: int) -> Path:
        return self.directory / f"shard-{shard_index:05d}.json"

    def store(self, shard_index: int, result) -> None:
        """Persist one completed shard result atomically.

        Parameters
        ----------
        shard_index:
            Position of the shard in the run's shard plan.
        result:
            ``(groups, index_lineage)`` as returned by the shard worker:
            the shard's group statistics and, per group, the original
            database row indices it condensed.
        """
        shard_groups, lineage = result
        payload = {
            "fingerprint": self.fingerprint,
            "shard": int(shard_index),
            "groups": [group.to_dict() for group in shard_groups],
            "lineage": [
                np.asarray(indices, dtype=np.int64).tolist()
                for indices in lineage
            ],
        }
        body = json.dumps(payload, separators=(",", ":"))
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        final = self._path(shard_index)
        temporary = final.with_suffix(".json.tmp")
        with open(temporary, "w") as handle:
            handle.write(f"{crc:08x} {body}")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, final)
        telemetry.counter_inc("durability.shard_checkpoints")

    def load(self, shard_index: int):
        """Load one shard result, or ``None`` when absent or invalid.

        Parameters
        ----------
        shard_index:
            Position of the shard in the run's shard plan.

        Returns
        -------
        tuple or None
            The stored ``(groups, index_lineage)``, or ``None`` when the
            file is missing, torn, CRC-corrupt, or was written under a
            different run fingerprint.
        """
        from repro.core.statistics import GroupStatistics

        path = self._path(shard_index)
        try:
            document = path.read_text()
        except OSError:
            return None
        if len(document) < 10 or document[8] != " ":
            return None
        checksum, body = document[:8], document[9:]
        try:
            expected = int(checksum, 16)
        except ValueError:
            return None
        if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
            return None
        try:
            payload = json.loads(body)
        except ValueError:
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("fingerprint") != self.fingerprint
            or payload.get("shard") != int(shard_index)
        ):
            return None
        shard_groups = [
            GroupStatistics.from_dict(entry) for entry in payload["groups"]
        ]
        lineage = [
            np.asarray(indices, dtype=np.int64)
            for indices in payload["lineage"]
        ]
        return shard_groups, lineage

    def clear(self) -> int:
        """Remove every checkpoint file of this fingerprint.

        Returns
        -------
        int
            Number of files removed.
        """
        removed = 0
        for path in sorted(self.directory.iterdir()):
            if _SHARD_PATTERN.match(path.name):
                path.unlink()
                removed += 1
        return removed

    def __repr__(self) -> str:
        return (
            f"ShardCheckpointStore(directory={str(self.directory)!r}, "
            f"fingerprint={self.fingerprint[:16]!r})"
        )

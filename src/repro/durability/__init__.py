"""Durable streaming condensation: WAL, checkpoints, and recovery.

The paper's dynamic regime (§3) keeps its entire state in per-group
``(Fs, Sc, n)`` statistics — tiny, additive, and therefore trivially
durable.  This package gives the streaming condensers crash recovery
without ever weakening the statistics-only invariant:

* :mod:`repro.durability.wal` — a size-rotated, CRC-framed write-ahead
  log of *statistics deltas* (post-operation group aggregates, never
  raw records);
* :mod:`repro.durability.snapshot` — atomic, CRC-checked snapshots of
  the full condenser state, including the seeded-RNG position;
* :mod:`repro.durability.manager` — the checkpoint/prune/recover
  protocol tying the two together;
* :mod:`repro.durability.recovery` — reconstruction of a live
  maintainer from a snapshot plus WAL tail, bit-identical to the
  uninterrupted run;
* :mod:`repro.durability.shards` — per-shard result checkpoints for
  the parallel engine's retry/resume path.

This package is privacy-critical: the analyzer's PRIV-001/PRIV-003
rules hold it to the same raw-record retention and serialization bans
as ``repro/core``.  See ``docs/durability.md`` for formats, recovery
semantics, and the privacy argument.
"""

from repro.durability.manager import (
    DEFAULT_KEEP_SNAPSHOTS,
    DurabilityManager,
    RecoveredState,
)
from repro.durability.recovery import (
    RecoveryError,
    rebuild_maintainer,
    recovered_position,
    recovered_window,
)
from repro.durability.shards import ShardCheckpointStore, shard_fingerprint
from repro.durability.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    SnapshotInfo,
    latest_snapshot,
    list_snapshots,
    prune_snapshots,
    read_snapshot,
    write_snapshot,
)
from repro.durability.wal import (
    DEFAULT_SEGMENT_BYTES,
    WriteAheadLog,
    decode_line,
    encode_entry,
    inspect_frames,
    list_segments,
    replay_directory,
)

__all__ = [
    "DEFAULT_KEEP_SNAPSHOTS",
    "DEFAULT_SEGMENT_BYTES",
    "DurabilityManager",
    "RecoveredState",
    "RecoveryError",
    "ShardCheckpointStore",
    "SNAPSHOT_FORMAT_VERSION",
    "SnapshotInfo",
    "WriteAheadLog",
    "decode_line",
    "encode_entry",
    "inspect_frames",
    "latest_snapshot",
    "list_segments",
    "list_snapshots",
    "prune_snapshots",
    "read_snapshot",
    "rebuild_maintainer",
    "recovered_position",
    "recovered_window",
    "replay_directory",
    "shard_fingerprint",
    "write_snapshot",
]

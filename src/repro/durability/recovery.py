"""Reconstruction of condenser state from a recovery result.

The durability layer moves opaque JSON; this module knows the entry
vocabulary the condensers write and turns a
:class:`~repro.durability.manager.RecoveredState` back into a live
:class:`~repro.core.dynamic.DynamicGroupMaintainer` (plus the stream
position the caller must resume the upstream feed from).

Entry vocabulary
----------------
``{"kind": "bootstrap", "pos": p, "state": {...}}``
    Full maintainer state after a (re-)bootstrap — replaces everything
    accumulated so far.  Written by ``fit()`` and by the sliding-window
    warm-up; windowed condensers add a ``"window"`` key.
``{"kind": "op", "pos": p, "ops": [...]}``
    One completed source operation and the journal sub-operations it
    produced (``founding`` / ``ingest`` / ``split`` / ``remove`` /
    ``merge``), applied via
    :meth:`~repro.core.dynamic.DynamicGroupMaintainer.apply_op`.
    A sliding-window push that both adds and expires is one atomic
    ``op`` entry, so recovery can never observe a half-applied push.
``{"kind": "batch", "pos": p, "ops": [...]}``
    One vectorized ingest block (``ingest_block``) and every
    sub-operation it produced (``absorb`` / ``split``).  Replayed
    exactly like an ``op`` entry; the distinct kind records the block
    boundary, so the position always advances a whole block at a time
    and the at-least-once re-feed resumes on a block edge.
``{"kind": "rng", "pos": p, "state": {...}}``
    The generator position after an anonymized-data generation, so
    post-recovery draws continue the original sequence bit for bit.

Recovery contract
-----------------
Raw records are never durable (the WAL and snapshots hold statistics
only), so the boundary of durability is the *position*: the number of
fully completed source operations.  After recovery the caller must
re-feed the upstream stream from ``position`` onward — the at-least-once
contract.  Operations whose entry never reached the WAL are simply
re-executed; because the ingest path consumes no randomness, the
re-executed operations reproduce the lost state exactly.

``repro.core`` is imported lazily so the durability package stays
importable from the condensers without a cycle.
"""

from __future__ import annotations

from repro.durability.manager import RecoveredState


class RecoveryError(RuntimeError):
    """Raised when a durability directory holds nothing reconstructible."""


def recovered_position(recovered: RecoveredState) -> int:
    """The stream position the upstream feed must resume from.

    Parameters
    ----------
    recovered:
        Recovery result from
        :meth:`~repro.durability.manager.DurabilityManager.recover`.

    Returns
    -------
    int
        Number of fully completed (and durable) source operations.
    """
    position = 0
    if recovered.snapshot_state is not None:
        position = int(recovered.snapshot_state.get("position", 0))
    for __, entry in recovered.entries:
        position = int(entry.get("pos", position))
    return position


def recovered_window(recovered: RecoveredState) -> int | None:
    """The sliding-window size recorded in a recovery result, if any.

    Parameters
    ----------
    recovered:
        Recovery result.

    Returns
    -------
    int or None
        The ``window`` recorded by a windowed condenser's snapshot or
        bootstrap entry; ``None`` for non-windowed logs.
    """
    window = None
    if recovered.snapshot_state is not None:
        window = recovered.snapshot_state.get("window")
    for __, entry in recovered.entries:
        if entry.get("kind") == "bootstrap" and "window" in entry:
            window = entry["window"]
    return int(window) if window is not None else None


def rebuild_maintainer(recovered: RecoveredState):
    """Reconstruct a maintainer and its position from a recovery result.

    Applies the snapshot state (if any), then replays the WAL tail in
    order.  Because every entry stores the *post-operation* group
    aggregates and the JSON float round trip is exact, the rebuilt
    maintainer is bit-identical to the in-memory state at the durable
    frontier.

    Parameters
    ----------
    recovered:
        Recovery result from
        :meth:`~repro.durability.manager.DurabilityManager.recover`.

    Returns
    -------
    (DynamicGroupMaintainer, int)
        The rebuilt maintainer and the resume position.

    Raises
    ------
    RecoveryError
        If the directory held neither a snapshot nor a bootstrap entry,
        or the tail references state that was never established.
    """
    from repro.core.dynamic import DynamicGroupMaintainer
    from repro.linalg.rng import restore_rng_state

    maintainer = None
    position = 0
    if recovered.snapshot_state is not None:
        maintainer = DynamicGroupMaintainer.from_state(
            recovered.snapshot_state["maintainer"]
        )
        position = int(recovered.snapshot_state.get("position", 0))
    for seq, entry in recovered.entries:
        kind = entry.get("kind")
        if kind == "bootstrap":
            maintainer = DynamicGroupMaintainer.from_state(entry["state"])
        elif kind in ("op", "batch"):
            if maintainer is None:
                raise RecoveryError(
                    f"WAL entry {seq} applies an operation before any "
                    "bootstrap or snapshot established state"
                )
            for sub in entry["ops"]:
                maintainer.apply_op(sub)
        elif kind == "rng":
            if maintainer is None:
                raise RecoveryError(
                    f"WAL entry {seq} restores RNG state before any "
                    "bootstrap or snapshot established state"
                )
            restore_rng_state(maintainer._rng, entry["state"])
        else:
            raise RecoveryError(
                f"WAL entry {seq} has unknown kind {kind!r}"
            )
        position = int(entry.get("pos", position))
    if maintainer is None:
        raise RecoveryError(
            "nothing to recover: the directory holds no valid snapshot "
            "and no WAL entries"
        )
    return maintainer, position

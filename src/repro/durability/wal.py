"""Write-ahead log for streaming condensation.

Every completed stream operation appends one JSON entry to the log.
An entry is a *statistics delta*: the post-update ``(Fs, Sc, n)``
aggregate of the touched group(s), never a raw record — the same
invariant the in-memory maintainer upholds (paper §2), extended to
disk.  Replaying the log therefore reconstructs group state by
re-setting aggregates, not by re-ingesting records.

On-disk format
--------------
The log is a directory of size-rotated segment files named
``wal-<segment>.log``.  Each line is::

    <crc32-hex-8> <json-entry>\\n

where the CRC covers the JSON text.  A torn tail — a truncated final
line, or a line whose CRC does not match — marks the durable frontier:
replay stops at the first invalid or discontinuous entry and everything
after it is discarded, which is exactly the crash semantics an
``fsync``-then-die process exhibits.

Durability knobs: ``fsync_every`` controls how many appends may ride on
the OS page cache between ``fsync`` calls (1 = every append is durable
before the call returns), and ``max_segment_bytes`` bounds segment size
so checkpoint-driven pruning can unlink whole files.
"""

from __future__ import annotations

import json
import os
import re
import time
import zlib
from pathlib import Path

from repro import telemetry
from repro.telemetry import DEFAULT_SECONDS_BUCKETS

#: Segment filename pattern: ``wal-<six-digit-segment>.log``.
_SEGMENT_PATTERN = re.compile(r"^wal-(\d{6})\.log$")

#: Default segment rotation threshold (bytes).
DEFAULT_SEGMENT_BYTES = 1 << 20


def _segment_name(index: int) -> str:
    """Filename of segment ``index``."""
    return f"wal-{index:06d}.log"


def encode_entry(entry: dict) -> str:
    """Render one entry as a CRC-framed log line (without newline).

    Parameters
    ----------
    entry:
        JSON-serializable entry mapping.

    Returns
    -------
    str
        ``"<crc32-hex-8> <json>"``.
    """
    body = json.dumps(entry, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}"


def decode_line(line: str) -> dict | None:
    """Parse one log line, returning ``None`` for torn/corrupt lines.

    Parameters
    ----------
    line:
        A line read from a segment file (trailing newline optional; a
        missing newline means the write was torn mid-line).

    Returns
    -------
    dict or None
        The decoded entry, or ``None`` if the line fails framing, CRC,
        or JSON validation.
    """
    if not line.endswith("\n"):
        return None
    line = line[:-1]
    if len(line) < 10 or line[8] != " ":
        return None
    checksum, body = line[:8], line[9:]
    try:
        expected = int(checksum, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        entry = json.loads(body)
    except ValueError:
        return None
    if not isinstance(entry, dict):
        return None
    return entry


def list_segments(directory) -> list:
    """Segment paths of a WAL directory, in log order, read-only.

    Parameters
    ----------
    directory:
        WAL directory (missing or empty directories yield ``[]``).

    Returns
    -------
    list of pathlib.Path
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        path for path in directory.iterdir()
        if _SEGMENT_PATTERN.match(path.name)
    )


def inspect_frames(directory):
    """Describe every physical WAL frame without modifying the log.

    Unlike opening a :class:`WriteAheadLog` (which repairs torn tails
    in place), this walks the segment files read-only — the right tool
    for ``repro wal-inspect`` and recovery dry-runs.  Frames *after*
    the durable frontier are still reported (with a non-``ok``
    status), so an operator can see exactly what a repair would
    discard.

    Parameters
    ----------
    directory:
        WAL directory.

    Yields
    ------
    dict
        One descriptor per physical line: ``segment`` (file name),
        ``offset``/``length`` (byte position and size within the
        segment), ``crc_ok`` (frame validates), ``seq``/``kind`` (from
        the decoded entry, ``None`` when invalid), and ``status`` —
        ``"ok"`` for frames inside the durable prefix, ``"torn"`` for
        CRC/framing failures, ``"gap"`` for sequence discontinuities,
        and ``"orphaned"`` for structurally valid frames stranded
        beyond an earlier invalid one.
    """
    previous_seq = None
    broken = False
    for segment in list_segments(directory):
        offset = 0
        with open(segment, "rb") as handle:
            for raw in handle:
                entry = decode_line(raw.decode("utf-8", "replace"))
                seq = entry.get("seq") if entry else None
                frame = {
                    "segment": segment.name,
                    "offset": offset,
                    "length": len(raw),
                    "crc_ok": entry is not None,
                    "seq": seq if isinstance(seq, int) else None,
                    "kind": entry.get("kind") if entry else None,
                }
                if broken:
                    frame["status"] = "orphaned"
                elif entry is None or not isinstance(seq, int):
                    frame["status"] = "torn"
                    broken = True
                elif previous_seq is not None and seq != previous_seq + 1:
                    frame["status"] = "gap"
                    broken = True
                else:
                    frame["status"] = "ok"
                    previous_seq = seq
                yield frame
                offset += len(raw)


def replay_directory(directory, after_seq: int = 0):
    """Read-only replay: valid entries past the durable frontier check.

    The generator equivalent of :meth:`WriteAheadLog.replay`, but
    without constructing a log object — so nothing is repaired,
    truncated, or opened for append.  Used by ``repro recover
    --dry-run`` to prove what a recovery *would* rebuild while leaving
    the directory byte-identical.

    Parameters
    ----------
    directory:
        WAL directory.
    after_seq:
        Only entries strictly after this sequence number are yielded.

    Yields
    ------
    (int, dict)
        ``(seq, entry)`` pairs in increasing ``seq`` order, ending at
        the durable frontier.
    """
    previous_seq = None
    for segment in list_segments(directory):
        with open(segment, "r", newline="") as handle:
            for line in handle:
                entry = decode_line(line)
                if entry is None:
                    return
                seq = entry.get("seq")
                if not isinstance(seq, int):
                    return
                if previous_seq is not None and seq != previous_seq + 1:
                    return
                previous_seq = seq
                if seq > after_seq:
                    yield seq, entry


class WriteAheadLog:
    """Size-rotated, CRC-framed append log of statistics deltas.

    Parameters
    ----------
    directory:
        Directory holding the segment files (created if missing).
    max_segment_bytes:
        Rotation threshold: a segment that reaches this size is closed
        and a new one opened.
    fsync_every:
        ``fsync`` the active segment every this many appends (1 =
        every append; larger values trade durability of the newest
        entries for throughput).

    Notes
    -----
    Sequence numbers start at 1 and are assigned by :meth:`append`.
    Opening an existing directory resumes after the last valid entry.
    """

    def __init__(self, directory, max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fsync_every: int = 1):
        if max_segment_bytes < 1:
            raise ValueError(
                f"max_segment_bytes must be >= 1, got {max_segment_bytes}"
            )
        if fsync_every < 1:
            raise ValueError(
                f"fsync_every must be >= 1, got {fsync_every}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = int(max_segment_bytes)
        self.fsync_every = int(fsync_every)
        self._handle = None
        self._appends_since_fsync = 0
        self._segment_index = 0
        self.last_seq = 0
        self._repair()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, entry: dict) -> int:
        """Assign the next sequence number to ``entry`` and persist it.

        Parameters
        ----------
        entry:
            JSON-serializable entry; its ``"seq"`` key is overwritten
            with the assigned sequence number.

        Returns
        -------
        int
            The assigned sequence number.
        """
        seq = self.last_seq + 1
        entry = dict(entry)
        entry["seq"] = seq
        line = encode_entry(entry) + "\n"
        handle = self._active_handle()
        handle.write(line)
        self._appends_since_fsync += 1
        if self._appends_since_fsync >= self.fsync_every:
            started = time.perf_counter()
            handle.flush()
            os.fsync(handle.fileno())
            telemetry.histogram_observe(
                "durability.wal_fsync_seconds",
                time.perf_counter() - started,
                buckets=DEFAULT_SECONDS_BUCKETS,
            )
            self._appends_since_fsync = 0
        self.last_seq = seq
        telemetry.counter_inc("durability.wal_appends")
        if handle.tell() >= self.max_segment_bytes:
            self._rotate()
        return seq

    def sync(self) -> None:
        """Force any unsynced appends to stable storage."""
        if self._handle is not None and self._appends_since_fsync:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._appends_since_fsync = 0

    def close(self) -> None:
        """Flush, ``fsync`` and close the active segment, if any."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def segments(self) -> list:
        """Segment paths in log order.

        Returns
        -------
        list of pathlib.Path
        """
        return sorted(
            path for path in self.directory.iterdir()
            if _SEGMENT_PATTERN.match(path.name)
        )

    def replay(self, after_seq: int = 0):
        """Yield valid entries with ``seq > after_seq`` in log order.

        Replay stops at the durable frontier: the first torn/corrupt
        line or sequence discontinuity.  Entries beyond the frontier —
        even structurally valid ones — are discarded, because an entry
        whose predecessor is lost describes a state transition from an
        unknown state.

        Parameters
        ----------
        after_seq:
            Only entries strictly after this sequence number are
            yielded (entries at or below it are skipped but still
            validated for continuity).

        Yields
        ------
        (int, dict)
            ``(seq, entry)`` pairs in increasing ``seq`` order.
        """
        self.close()
        previous_seq = None
        for segment in self.segments():
            with open(segment, "r", newline="") as handle:
                for line in handle:
                    entry = decode_line(line)
                    if entry is None:
                        return
                    seq = entry.get("seq")
                    if not isinstance(seq, int):
                        return
                    if previous_seq is not None and seq != previous_seq + 1:
                        return
                    previous_seq = seq
                    if seq > after_seq:
                        yield seq, entry

    # ------------------------------------------------------------------
    # Pruning
    # ------------------------------------------------------------------

    def prune(self, upto_seq: int) -> int:
        """Unlink segments whose entries are all ``<= upto_seq``.

        Called after a checkpoint at ``upto_seq``: the snapshot now
        covers those entries, so the segments are dead weight.  The
        active segment is never pruned.

        Parameters
        ----------
        upto_seq:
            Highest sequence number covered by the latest checkpoint.

        Returns
        -------
        int
            Number of segments removed.
        """
        removed = 0
        segments = self.segments()
        active = (
            self.directory / _segment_name(self._segment_index)
        )
        for segment in segments:
            if segment == active:
                continue
            last = self._last_seq_in(segment)
            if last is not None and last <= upto_seq:
                segment.unlink()
                removed += 1
            else:
                # Segments are ordered; once one survives, later ones
                # hold higher sequence numbers and survive too.
                break
        if removed:
            telemetry.counter_inc("durability.wal_segments_pruned", removed)
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _repair(self) -> None:
        """Make the physical log match its logical (valid) prefix.

        Opening after a crash may find a torn final line, or — after
        external corruption — valid-looking lines beyond an invalid
        one.  Appending after either would interleave garbage with new
        entries, so the log is repaired on open exactly as a database
        WAL would be: the first invalid byte and everything after it
        (including later segments) is discarded.
        """
        previous_seq = None
        for segment in self.segments():
            valid_bytes = 0
            broken = False
            with open(segment, "rb") as handle:
                for raw in handle:
                    entry = decode_line(raw.decode("utf-8", "replace"))
                    seq = entry.get("seq") if entry else None
                    if not isinstance(seq, int) or (
                        previous_seq is not None
                        and seq != previous_seq + 1
                    ):
                        broken = True
                        break
                    previous_seq = seq
                    valid_bytes += len(raw)
            index = int(_SEGMENT_PATTERN.match(segment.name).group(1))
            if broken:
                if valid_bytes == 0:
                    segment.unlink()
                    self._segment_index = max(self._segment_index, index)
                else:
                    with open(segment, "rb+") as handle:
                        handle.truncate(valid_bytes)
                    self._segment_index = index
                for later in self.segments():
                    later_index = int(
                        _SEGMENT_PATTERN.match(later.name).group(1)
                    )
                    if later_index > index:
                        later.unlink()
                break
            self._segment_index = index
        self.last_seq = previous_seq or 0

    def _active_handle(self):
        """The open handle of the active segment, creating it lazily."""
        if self._handle is None:
            path = self.directory / _segment_name(self._segment_index)
            self._handle = open(path, "a", newline="")
        return self._handle

    def _rotate(self) -> None:
        """Close the active segment and start the next one."""
        self.close()
        self._segment_index += 1
        telemetry.counter_inc("durability.wal_rotations")

    def _last_seq_in(self, segment) -> int | None:
        """Last valid sequence number in ``segment`` (None if empty)."""
        last = None
        with open(segment, "r", newline="") as handle:
            for line in handle:
                entry = decode_line(line)
                if entry is None:
                    break
                seq = entry.get("seq")
                if isinstance(seq, int):
                    last = seq
        return last

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog(directory={str(self.directory)!r}, "
            f"last_seq={self.last_seq})"
        )

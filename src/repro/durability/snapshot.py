"""Checkpoint snapshots of condensed-statistics state.

A snapshot is the full durable state of a streaming condenser — group
``(Fs, Sc, n)`` aggregates, operation counters, the stream position,
and the seeded-RNG position — serialized as one JSON document.  Raw
records never appear in a snapshot: the state it captures is exactly
the state the paper's server is allowed to retain (§2), which is what
makes checkpointing the dynamic regime trivially safe.

Snapshots are crash-safe by construction:

* the document is written to a ``*.tmp`` file, flushed and ``fsync``\\ ed,
  then atomically renamed into place (``os.replace``), so a reader
  never observes a half-written snapshot under the final name;
* the payload carries a CRC32 so a torn or bit-rotted file is detected
  and skipped;
* :func:`latest_snapshot` returns the newest file that passes
  validation, falling back to older ones, so a corrupt newest snapshot
  costs only a longer WAL replay, never the state.
"""

from __future__ import annotations

import json
import os
import re
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.telemetry import DEFAULT_SECONDS_BUCKETS, DEFAULT_SIZE_BUCKETS

#: Snapshot format marker so future revisions can migrate old files.
SNAPSHOT_FORMAT_VERSION = 1

#: Snapshot filename pattern: ``snapshot-<twelve-digit-seq>.json``.
_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{12})\.json$")


@dataclass(frozen=True)
class SnapshotInfo:
    """A validated snapshot on disk.

    Attributes
    ----------
    path:
        Snapshot file location.
    seq:
        WAL sequence number the snapshot covers: recovery replays only
        entries with ``seq`` greater than this.
    state:
        The deserialized state document.
    """

    path: Path
    seq: int
    state: dict


def snapshot_path(directory, seq: int) -> Path:
    """Canonical path of the snapshot covering WAL sequence ``seq``.

    Parameters
    ----------
    directory:
        Durability directory.
    seq:
        Covered WAL sequence number.

    Returns
    -------
    pathlib.Path
    """
    return Path(directory) / f"snapshot-{seq:012d}.json"


def write_snapshot(directory, state: dict, seq: int) -> Path:
    """Atomically persist ``state`` as the snapshot covering ``seq``.

    Parameters
    ----------
    directory:
        Durability directory (created if missing).
    state:
        JSON-serializable state document (statistics only — the caller
        is responsible for never including raw records; the analyzer's
        PRIV rules enforce this for the in-repo callers).
    seq:
        WAL sequence number covered by this state.

    Returns
    -------
    pathlib.Path
        Path of the written snapshot.

    Raises
    ------
    ValueError
        If ``seq`` is negative.
    """
    if seq < 0:
        raise ValueError(f"seq must be non-negative, got {seq}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    body = json.dumps(
        {"format_version": SNAPSHOT_FORMAT_VERSION, "seq": seq,
         "state": state},
        separators=(",", ":"),
    )
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    document = f"{crc:08x} {body}"
    final = snapshot_path(directory, seq)
    temporary = final.with_suffix(".json.tmp")
    started = time.perf_counter()
    with telemetry.span("durability.snapshot") as snapshot_span:
        snapshot_span.set_attribute("seq", seq)
        with open(temporary, "w") as handle:
            handle.write(document)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, final)
        snapshot_span.set_attribute("bytes", len(document))
    telemetry.counter_inc("durability.snapshots")
    telemetry.histogram_observe(
        "durability.snapshot_seconds", time.perf_counter() - started,
        buckets=DEFAULT_SECONDS_BUCKETS,
    )
    telemetry.histogram_observe(
        "durability.snapshot_write_bytes", len(document),
        buckets=DEFAULT_SIZE_BUCKETS,
    )
    return final


def read_snapshot(path) -> SnapshotInfo | None:
    """Load and validate one snapshot file.

    Parameters
    ----------
    path:
        Snapshot file to read.

    Returns
    -------
    SnapshotInfo or None
        The validated snapshot, or ``None`` if the file is missing,
        torn, CRC-corrupt, or structurally invalid.
    """
    path = Path(path)
    try:
        document = path.read_text()
    except OSError:
        return None
    if len(document) < 10 or document[8] != " ":
        return None
    checksum, body = document[:8], document[9:]
    try:
        expected = int(checksum, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        payload = json.loads(body)
    except ValueError:
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("format_version") != SNAPSHOT_FORMAT_VERSION
        or not isinstance(payload.get("seq"), int)
        or not isinstance(payload.get("state"), dict)
    ):
        return None
    return SnapshotInfo(path=path, seq=payload["seq"],
                        state=payload["state"])


def list_snapshots(directory) -> list:
    """Snapshot file paths in ``directory``, oldest first.

    Parameters
    ----------
    directory:
        Durability directory.

    Returns
    -------
    list of pathlib.Path
        Files matching the snapshot naming scheme (not yet validated).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        path for path in directory.iterdir()
        if _SNAPSHOT_PATTERN.match(path.name)
    )


def latest_snapshot(directory) -> SnapshotInfo | None:
    """The newest snapshot in ``directory`` that passes validation.

    Corrupt candidates are skipped (newest first), so a torn final
    snapshot degrades recovery to the previous one plus a longer WAL
    replay rather than failing it.

    Parameters
    ----------
    directory:
        Durability directory.

    Returns
    -------
    SnapshotInfo or None
        The newest valid snapshot, or ``None`` when none validates.
    """
    for path in reversed(list_snapshots(directory)):
        info = read_snapshot(path)
        if info is not None:
            return info
        telemetry.counter_inc("durability.snapshots_rejected")
    return None


def prune_snapshots(directory, keep: int) -> int:
    """Remove all but the newest ``keep`` snapshot files.

    Parameters
    ----------
    directory:
        Durability directory.
    keep:
        Number of newest snapshots to retain (at least 1 — the latest
        valid snapshot is the recovery anchor).

    Returns
    -------
    int
        Number of files removed.

    Raises
    ------
    ValueError
        If ``keep`` is below 1.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    snapshots = list_snapshots(directory)
    removed = 0
    for path in snapshots[:-keep]:
        path.unlink()
        removed += 1
    return removed

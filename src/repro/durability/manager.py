"""Checkpoint + WAL coordination for one durable condenser.

:class:`DurabilityManager` owns a durability directory holding both a
:class:`~repro.durability.wal.WriteAheadLog` and the snapshot files of
:mod:`repro.durability.snapshot`, and implements the classic recovery
protocol on top of them:

* every completed stream operation is appended to the WAL (statistics
  deltas only — see the WAL module docstring for the privacy argument);
* every ``checkpoint_every`` appends (or on demand), the bound state
  provider is serialized into an atomic snapshot covering the WAL
  position, after which fully-covered WAL segments are pruned;
* :meth:`recover` returns the newest valid snapshot plus the WAL tail
  after it, from which the owning condenser reconstructs bit-identical
  in-memory state.

The manager is deliberately ignorant of condenser internals: it moves
opaque JSON state and entries.  The condensers own the entry
vocabulary (see :mod:`repro.durability.recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro import telemetry
from repro.durability.snapshot import (
    latest_snapshot,
    list_snapshots,
    prune_snapshots,
    write_snapshot,
)
from repro.durability.wal import DEFAULT_SEGMENT_BYTES, WriteAheadLog
from repro.telemetry import DEFAULT_SIZE_BUCKETS

#: Default number of snapshots kept on disk.  More than one, so a torn
#: newest snapshot still leaves a valid recovery anchor.
DEFAULT_KEEP_SNAPSHOTS = 2


@dataclass(frozen=True)
class RecoveredState:
    """Everything :meth:`DurabilityManager.recover` found on disk.

    Attributes
    ----------
    snapshot_state:
        State document of the newest valid snapshot, or ``None`` when
        no snapshot validates (recovery then replays the WAL from its
        first entry).
    entries:
        ``(seq, entry)`` pairs of the WAL tail after the snapshot, in
        log order, ending at the durable frontier.
    last_seq:
        Sequence number of the last durable WAL entry (0 for an empty
        log).
    """

    snapshot_state: dict | None
    entries: list
    last_seq: int

    @property
    def is_empty(self) -> bool:
        """Whether the directory held nothing recoverable."""
        return self.snapshot_state is None and not self.entries


class DurabilityManager:
    """WAL + checkpoint lifecycle for one durable condenser.

    Parameters
    ----------
    directory:
        Durability directory (created if missing); holds both WAL
        segments and snapshot files.
    checkpoint_every:
        Automatic checkpoint cadence in WAL appends; ``0`` (default)
        disables automatic checkpoints — :meth:`checkpoint` can still
        be called explicitly.
    keep_snapshots:
        Number of newest snapshots retained after each checkpoint.
    max_segment_bytes, fsync_every:
        Passed to :class:`~repro.durability.wal.WriteAheadLog`.
    """

    def __init__(self, directory, checkpoint_every: int = 0,
                 keep_snapshots: int = DEFAULT_KEEP_SNAPSHOTS,
                 max_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fsync_every: int = 1):
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if keep_snapshots < 1:
            raise ValueError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}"
            )
        self.directory = Path(directory)
        self.checkpoint_every = int(checkpoint_every)
        self.keep_snapshots = int(keep_snapshots)
        self.wal = WriteAheadLog(
            self.directory, max_segment_bytes=max_segment_bytes,
            fsync_every=fsync_every,
        )
        self._state_provider = None
        self._appends_since_checkpoint = 0

    def bind(self, state_provider) -> None:
        """Register the callable that serializes the owner's full state.

        Parameters
        ----------
        state_provider:
            Zero-argument callable returning a JSON-serializable state
            document (statistics only).  Called at every checkpoint.
        """
        if not callable(state_provider):
            raise TypeError("state_provider must be callable")
        self._state_provider = state_provider

    # ------------------------------------------------------------------
    # Logging and checkpointing
    # ------------------------------------------------------------------

    def append(self, entry: dict) -> int:
        """Append one entry to the WAL, checkpointing on cadence.

        Parameters
        ----------
        entry:
            JSON-serializable entry; the WAL assigns its ``"seq"``.

        Returns
        -------
        int
            The assigned sequence number.
        """
        seq = self.wal.append(entry)
        self._appends_since_checkpoint += 1
        if (
            self.checkpoint_every
            and self._state_provider is not None
            and self._appends_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return seq

    def checkpoint(self) -> Path:
        """Snapshot the bound state and prune covered WAL segments.

        Returns
        -------
        pathlib.Path
            Path of the written snapshot.

        Raises
        ------
        RuntimeError
            If no state provider is bound.
        """
        if self._state_provider is None:
            raise RuntimeError(
                "no state provider bound; call bind() before checkpoint()"
            )
        state = self._state_provider()
        # The snapshot must not claim coverage of entries still riding
        # the page cache: sync the WAL before stamping the sequence.
        self.wal.sync()
        path = write_snapshot(self.directory, state, seq=self.wal.last_seq)
        prune_snapshots(self.directory, keep=self.keep_snapshots)
        oldest = self._oldest_snapshot_seq()
        if oldest is not None:
            # Replay may have to fall back to the oldest retained
            # snapshot, so only segments it covers are prunable.
            self.wal.prune(oldest)
        self._appends_since_checkpoint = 0
        self._publish_disk_gauges()
        return path

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Load the newest valid snapshot and the WAL tail after it.

        Opening the WAL already repaired any torn tail, so the returned
        entries end exactly at the durable frontier.

        Returns
        -------
        RecoveredState
        """
        with telemetry.span("durability.recover") as recover_span:
            info = latest_snapshot(self.directory)
            base_seq = info.seq if info is not None else 0
            entries = list(self.wal.replay(after_seq=base_seq))
            recover_span.set_attribute("snapshot_seq", base_seq)
            recover_span.set_attribute("replayed", len(entries))
        telemetry.counter_inc("durability.recoveries")
        telemetry.histogram_observe(
            "durability.replay_entries", len(entries),
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._publish_disk_gauges()
        return RecoveredState(
            snapshot_state=info.state if info is not None else None,
            entries=entries,
            last_seq=self.wal.last_seq,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying WAL."""
        self.wal.close()
        self._publish_disk_gauges()

    def disk_usage(self) -> dict:
        """On-disk footprint of the durability directory.

        Returns
        -------
        dict
            ``{"wal_bytes": ..., "snapshot_bytes": ...}`` — total bytes
            across WAL segments and across retained snapshot files.
        """
        wal_bytes = sum(
            path.stat().st_size for path in self.wal.segments()
        )
        snapshot_bytes = sum(
            path.stat().st_size
            for path in list_snapshots(self.directory)
        )
        return {"wal_bytes": wal_bytes, "snapshot_bytes": snapshot_bytes}

    def _publish_disk_gauges(self) -> None:
        """Export the directory footprint through the telemetry registry.

        Refreshed at every checkpoint, recovery, and close — the
        moments the footprint changes step-wise (segment prune,
        snapshot rotation) and the moments an operator watching
        ``durability.wal_bytes`` most needs a fresh value (see
        ``docs/operations.md``).
        """
        usage = self.disk_usage()
        telemetry.gauge_set("durability.wal_bytes", usage["wal_bytes"])
        telemetry.gauge_set(
            "durability.snapshot_bytes", usage["snapshot_bytes"]
        )

    def _oldest_snapshot_seq(self) -> int | None:
        """Sequence number of the oldest retained snapshot file."""
        snapshots = list_snapshots(self.directory)
        if not snapshots:
            return None
        stem = snapshots[0].stem
        return int(stem.rsplit("-", 1)[1])

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"DurabilityManager(directory={str(self.directory)!r}, "
            f"last_seq={self.wal.last_seq}, "
            f"checkpoint_every={self.checkpoint_every})"
        )

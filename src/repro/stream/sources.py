"""Stream sources.

The paper's dynamic setting (§3) assumes "a constant stream S of data
which consists of new data points arriving in the database".  These
sources model that arrival process for experiments: replaying a stored
array (with or without shuffling), sampling from a drifting distribution
to stress the maintainer's split behaviour, and interleaving several
sources into one arrival order.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.rng import check_random_state


class ArrayStream:
    """Replay the rows of an array as a stream.

    Parameters
    ----------
    data:
        Record array of shape ``(n, d)``.
    shuffle:
        Randomize the arrival order.
    random_state:
        Seed or generator for the shuffle.
    """

    def __init__(self, data: np.ndarray, shuffle: bool = False,
                 random_state=None):
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if shuffle:
            rng = check_random_state(random_state)
            data = data[rng.permutation(data.shape[0])]
        self._data = data
        self._cursor = 0

    @property
    def n_remaining(self) -> int:
        """Records not yet emitted."""
        return self._data.shape[0] - self._cursor

    @property
    def n_features(self) -> int:
        """Record dimensionality."""
        return self._data.shape[1]

    def take(self, count: int) -> np.ndarray:
        """Emit up to ``count`` records in arrival order."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        end = min(self._cursor + count, self._data.shape[0])
        batch = self._data[self._cursor:end]
        self._cursor = end
        return batch

    def __iter__(self):
        while self._cursor < self._data.shape[0]:
            record = self._data[self._cursor]
            self._cursor += 1
            yield record


class DriftingGaussianStream:
    """Gaussian stream whose mean drifts linearly over time.

    Exercises the dynamic maintainer's split machinery: as the
    distribution moves, arriving points pile into the leading groups and
    force a cascade of splits.  ``drift_per_step`` is the displacement of
    the mean per emitted record along ``drift_direction``.

    Parameters
    ----------
    mean:
        Initial mean, shape ``(d,)``.
    covariance:
        Fixed covariance, shape ``(d, d)``.
    drift_per_step:
        Mean displacement magnitude per record.
    drift_direction:
        Unit direction of the drift; defaults to the first axis.
    random_state:
        Seed or generator.
    """

    def __init__(self, mean: np.ndarray, covariance: np.ndarray,
                 drift_per_step: float = 0.0,
                 drift_direction: np.ndarray | None = None,
                 random_state=None):
        self._mean = np.asarray(mean, dtype=float)
        self._covariance = np.asarray(covariance, dtype=float)
        d = self._mean.shape[0]
        if self._covariance.shape != (d, d):
            raise ValueError(
                f"covariance must have shape {(d, d)}, "
                f"got {self._covariance.shape}"
            )
        if drift_direction is None:
            drift_direction = np.zeros(d)
            drift_direction[0] = 1.0
        drift_direction = np.asarray(drift_direction, dtype=float)
        norm = float(np.linalg.norm(drift_direction))
        if norm == 0:
            raise ValueError("drift_direction must be non-zero")
        self._drift = drift_per_step * drift_direction / norm
        self._rng = check_random_state(random_state)
        self._step = 0
        self._cholesky = np.linalg.cholesky(
            self._covariance + 1e-12 * np.eye(d)
        )

    @property
    def n_features(self) -> int:
        """Record dimensionality."""
        return self._mean.shape[0]

    def take(self, count: int) -> np.ndarray:
        """Emit ``count`` records, drifting the mean as they arrive."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        records = np.empty((count, self.n_features))
        for row in range(count):
            current_mean = self._mean + self._step * self._drift
            noise = self._cholesky @ self._rng.standard_normal(
                self.n_features
            )
            records[row] = current_mean + noise
            self._step += 1
        return records

    def __iter__(self):
        while True:
            yield self.take(1)[0]


def interleave_streams(streams, counts, random_state=None):
    """Merge several finite streams into one random arrival order.

    Parameters
    ----------
    streams:
        Sequence of sources with a ``take`` method.
    counts:
        Records to draw from each source (aligned with ``streams``).
    random_state:
        Seed or generator for the interleaving order.

    Returns
    -------
    numpy.ndarray
        All drawn records in a single randomized arrival order.
    """
    if len(streams) != len(counts):
        raise ValueError("streams and counts must align")
    if not streams:
        raise ValueError("need at least one stream")
    rng = check_random_state(random_state)
    batches = [
        stream.take(count) for stream, count in zip(streams, counts)
    ]
    merged = np.vstack([batch for batch in batches if batch.shape[0]])
    return merged[rng.permutation(merged.shape[0])]

"""Sliding-window condensation.

A stream-analytics deployment often cares only about the most recent
``W`` records.  :class:`SlidingWindowCondenser` keeps the condensed
statistics synchronized with that window: arrivals are added through
the dynamic maintainer, and once the window is full each arrival also
*removes* the expiring record via the deletion machinery (merge-on-
underflow, the dual of split-on-overflow).

Trust-model note: the window buffer itself holds raw records — that is
inherent to sliding-window semantics and mirrors the paper's setting,
where the condensation server sees records transiently and *persists*
only aggregates.  Anything generated or stored from this class is
k-indistinguishable.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro import telemetry
from repro.core.dynamic import DynamicGroupMaintainer
from repro.core.generation import generate_anonymized_data
from repro.core.statistics import CondensedModel
from repro.linalg.rng import check_random_state


class SlidingWindowCondenser:
    """Condensed statistics over the last ``window`` stream records.

    Parameters
    ----------
    k:
        Indistinguishability level.
    window:
        Number of most recent records the statistics reflect; must be
        at least ``2k`` so the maintainer always has room to keep every
        group in its ``[k, 2k)`` band.
    sampler, random_state:
        Generation settings, as in the condenser classes.
    """

    def __init__(self, k: int, window: int, sampler="uniform",
                 random_state=None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if window < 2 * k:
            raise ValueError(
                f"window must be at least 2k={2 * k}, got {window}"
            )
        self.k = int(k)
        self.window = int(window)
        self.sampler = sampler
        self._rng = check_random_state(random_state)
        self._buffer: deque = deque()
        self._maintainer: DynamicGroupMaintainer | None = None

    def push(self, record: np.ndarray) -> None:
        """Ingest one stream record, expiring the oldest when full."""
        record = np.asarray(record, dtype=float)
        if record.ndim != 1:
            raise ValueError(
                f"record must be a vector, got shape {record.shape}"
            )
        # Trusted-side window: the module docstring's trust-model note
        # applies; only aggregates ever leave this class.
        # repro-lint: disable-next=PRIV-001 -- transient window buffer
        self._buffer.append(record.copy())
        telemetry.counter_inc("stream.window.pushed")
        if self._maintainer is None:
            if len(self._buffer) >= 2 * self.k:
                initial = np.vstack(self._buffer)
                self._maintainer = DynamicGroupMaintainer(
                    self.k, initial_data=initial, random_state=self._rng
                )
            return
        self._maintainer.add(record)
        if len(self._buffer) > self.window:
            expired = self._buffer.popleft()
            self._maintainer.remove(expired)
            telemetry.counter_inc("stream.window.expired")

    def push_stream(self, records) -> None:
        """Ingest an iterable of records in arrival order."""
        for record in records:
            self.push(record)

    @property
    def n_seen(self) -> int:
        """Records currently inside the window (or warm-up buffer)."""
        return len(self._buffer)

    @property
    def is_warm(self) -> bool:
        """Whether condensed statistics exist yet (>= 2k records seen)."""
        return self._maintainer is not None

    def to_model(self) -> CondensedModel:
        """Snapshot the window's condensed statistics."""
        if self._maintainer is None:
            raise ValueError(
                f"window is still warming up: need {2 * self.k} records, "
                f"have {len(self._buffer)}"
            )
        return self._maintainer.to_model()

    def generate(self) -> np.ndarray:
        """Anonymized records representing the current window."""
        with telemetry.span("stream.window.generate") as generate_span:
            model = self.to_model()
            generate_span.set_attribute("n_groups", model.n_groups)
            return generate_anonymized_data(
                model, sampler=self.sampler, random_state=self._rng
            )

    def __repr__(self) -> str:
        return (
            f"SlidingWindowCondenser(k={self.k}, window={self.window}, "
            f"n_seen={self.n_seen}, warm={self.is_warm})"
        )

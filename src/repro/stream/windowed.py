"""Sliding-window condensation.

A stream-analytics deployment often cares only about the most recent
``W`` records.  :class:`SlidingWindowCondenser` keeps the condensed
statistics synchronized with that window: arrivals are added through
the dynamic maintainer, and once the window is full each arrival also
*removes* the expiring record via the deletion machinery (merge-on-
underflow, the dual of split-on-overflow).

Trust-model note: the window buffer itself holds raw records — that is
inherent to sliding-window semantics and mirrors the paper's setting,
where the condensation server sees records transiently and *persists*
only aggregates.  Anything generated or stored from this class is
k-indistinguishable.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro import telemetry
from repro.core.dynamic import DynamicGroupMaintainer
from repro.core.generation import generate_anonymized_data
from repro.core.statistics import CondensedModel
from repro.linalg.rng import check_random_state


class SlidingWindowCondenser:
    """Condensed statistics over the last ``window`` stream records.

    Parameters
    ----------
    k:
        Indistinguishability level.
    window:
        Number of most recent records the statistics reflect; must be
        at least ``2k`` so the maintainer always has room to keep every
        group in its ``[k, 2k)`` band.
    sampler, random_state:
        Generation settings, as in the condenser classes.
    wal_dir:
        Durability directory.  When set, every completed push is
        journaled to a write-ahead log as its *post-operation group
        aggregates* (one atomic entry per push, covering both the add
        and any expiry) and the condenser can be rebuilt with
        :meth:`recover`.  The window buffer itself is never persisted —
        after recovery the caller must call :meth:`restore_window`
        with the re-fed tail of the stream before pushing again.
    checkpoint_every:
        With ``wal_dir`` set, write a full snapshot every this many WAL
        entries (0 disables automatic snapshots; :meth:`checkpoint`
        still works).
    fsync_every:
        Group-commit batch size for the WAL: ``fsync`` every this many
        appends.  ``1`` (default) makes each push durable before it
        returns; larger values batch pushes per fsync, trading the
        newest ``fsync_every - 1`` pushes after a crash (which the
        at-least-once re-feed replays) for ingest throughput.
    """

    def __init__(self, k: int, window: int, sampler="uniform",
                 random_state=None, wal_dir=None,
                 checkpoint_every: int = 0, fsync_every: int = 1):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if window < 2 * k:
            raise ValueError(
                f"window must be at least 2k={2 * k}, got {window}"
            )
        self.k = int(k)
        self.window = int(window)
        self.sampler = sampler
        self.wal_dir = wal_dir
        self.checkpoint_every = int(checkpoint_every)
        self.fsync_every = int(fsync_every)
        self._rng = check_random_state(random_state)
        self._buffer: deque = deque()
        self._maintainer: DynamicGroupMaintainer | None = None
        self._position = 0
        self._ops: list = []
        self._window_restored = True
        self._manager = None
        if wal_dir is not None:
            from repro.durability import DurabilityManager

            self._manager = DurabilityManager(
                wal_dir, checkpoint_every=self.checkpoint_every,
                fsync_every=self.fsync_every,
            )
            self._manager.bind(self._durable_state)

    def push(self, record: np.ndarray) -> None:
        """Ingest one stream record, expiring the oldest when full."""
        if not self._window_restored:
            raise RuntimeError(
                "recovered condenser: call restore_window() with the "
                f"last {min(self._position, self.window)} stream "
                "records before pushing"
            )
        record = np.asarray(record, dtype=float)
        if record.ndim != 1:
            raise ValueError(
                f"record must be a vector, got shape {record.shape}"
            )
        # Trusted-side window: the module docstring's trust-model note
        # applies; only aggregates ever leave this class.
        # repro-lint: disable-next=PRIV-001 -- transient window buffer
        self._buffer.append(record.copy())
        telemetry.counter_inc("stream.window.pushed")
        if self._maintainer is None:
            self._position += 1
            if len(self._buffer) >= 2 * self.k:
                initial = np.vstack(self._buffer)
                self._maintainer = DynamicGroupMaintainer(
                    self.k, initial_data=initial, random_state=self._rng
                )
                if self._manager is not None:
                    self._attach_journal()
                    self._manager.append({
                        "kind": "bootstrap", "pos": self._position,
                        "state": self._maintainer.state_dict(),
                        "window": self.window,
                    })
            return
        self._maintainer.add(record)
        if len(self._buffer) > self.window:
            expired = self._buffer.popleft()
            self._maintainer.remove(expired)
            telemetry.counter_inc("stream.window.expired")
        self._position += 1
        self._flush_ops()

    def push_stream(self, records, batch_size: int = 1) -> None:
        """Ingest an iterable of records in arrival order.

        Parameters
        ----------
        records:
            Records in arrival order; 2-D array when batching.
        batch_size:
            With the default ``1``, records are pushed one at a time —
            bit-identical to looping :meth:`push`.  Larger values
            vectorize the *fill phase*: while the window has headroom
            (no expiry can occur inside a block) whole blocks are
            absorbed through
            :meth:`~repro.core.dynamic.DynamicGroupMaintainer.ingest_block`
            and journaled as one ``batch`` WAL entry each.  Warm-up
            and the steady state (every arrival expires a record) fall
            back to per-record pushes, so expiry ordering is
            unchanged.
        """
        if batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if batch_size == 1:
            for record in records:
                self.push(record)
            return
        if not self._window_restored:
            raise RuntimeError(
                "recovered condenser: call restore_window() with the "
                f"last {min(self._position, self.window)} stream "
                "records before pushing"
            )
        records = np.asarray(records, dtype=float)
        if records.ndim != 2:
            raise ValueError(
                f"records must be 2-D when batching, got shape "
                f"{records.shape}"
            )
        if not np.isfinite(records).all():
            raise ValueError("records contain NaN or infinite values")
        consumed = 0
        while consumed < records.shape[0]:
            headroom = self.window - len(self._buffer)
            if self._maintainer is None or headroom <= 0:
                self.push(records[consumed])
                consumed += 1
                continue
            block = records[consumed:consumed + min(batch_size, headroom)]
            for row in block:
                # Same trust-model note as push(): transient window only.
                # repro-lint: disable-next=PRIV-001 -- transient window buffer
                self._buffer.append(np.array(row, dtype=float))
            telemetry.counter_inc(
                "stream.window.pushed", block.shape[0]
            )
            self._maintainer.ingest_block(block)
            self._position += block.shape[0]
            consumed += block.shape[0]
            self._flush_ops(kind="batch")

    @property
    def n_seen(self) -> int:
        """Records currently inside the window (or warm-up buffer)."""
        return len(self._buffer)

    @property
    def is_warm(self) -> bool:
        """Whether condensed statistics exist yet (>= 2k records seen)."""
        return self._maintainer is not None

    def to_model(self) -> CondensedModel:
        """Snapshot the window's condensed statistics."""
        if self._maintainer is None:
            raise ValueError(
                f"window is still warming up: need {2 * self.k} records, "
                f"have {len(self._buffer)}"
            )
        return self._maintainer.to_model()

    def generate(self) -> np.ndarray:
        """Anonymized records representing the current window.

        On a durable condenser, the post-generation RNG position is
        journaled so recovered state reproduces later draws exactly.
        """
        with telemetry.span("stream.window.generate") as generate_span:
            model = self.to_model()
            generate_span.set_attribute("n_groups", model.n_groups)
            generated = generate_anonymized_data(
                model, sampler=self.sampler, random_state=self._rng
            )
        if self._manager is not None and self._maintainer is not None:
            from repro.linalg.rng import rng_state

            self._manager.append({
                "kind": "rng", "pos": self._position,
                "state": rng_state(self._rng),
            })
        return generated

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    @property
    def position(self) -> int:
        """Number of completed pushes (including warm-up pushes).

        After :meth:`recover`, this is the position the upstream feed
        must resume from (the at-least-once recovery contract).
        """
        return self._position

    def checkpoint(self):
        """Snapshot the full durable state now.

        Raises
        ------
        RuntimeError
            If durability is disabled or the window is still warming up
            (only aggregates are ever durable, and none exist yet).
        """
        if self._manager is None:
            raise RuntimeError(
                "durability is disabled; construct with wal_dir= to "
                "enable checkpointing"
            )
        if self._maintainer is None:
            raise RuntimeError(
                "window is still warming up: no condensed statistics "
                "exist to checkpoint (raw records are never durable)"
            )
        return self._manager.checkpoint()

    def close(self) -> None:
        """Flush and close the write-ahead log, if durable."""
        if self._manager is not None:
            self._manager.close()

    @classmethod
    def recover(cls, wal_dir, sampler="uniform",
                checkpoint_every: int = 0,
                fsync_every: int = 1) -> "SlidingWindowCondenser":
        """Rebuild a durable windowed condenser from its directory.

        The condensed statistics, counters, and RNG position come back
        bit-identical to the state at the durable frontier, but the
        window *buffer* does not — raw records are never persisted.
        The returned condenser refuses :meth:`push` until
        :meth:`restore_window` is called with the last
        ``min(position, window)`` records of the re-fed stream.

        Raises
        ------
        repro.durability.RecoveryError
            If the directory holds nothing reconstructible, or was not
            written by a sliding-window condenser.
        """
        from repro.durability import (
            DurabilityManager,
            RecoveryError,
            rebuild_maintainer,
            recovered_window,
        )

        manager = DurabilityManager(
            wal_dir, checkpoint_every=int(checkpoint_every),
            fsync_every=int(fsync_every),
        )
        recovered = manager.recover()
        window = recovered_window(recovered)
        if window is None:
            raise RecoveryError(
                "directory was not written by a sliding-window "
                "condenser: no window size recorded"
            )
        maintainer, position = rebuild_maintainer(recovered)
        condenser = cls(
            maintainer.k, window, sampler=sampler,
            random_state=maintainer._rng,
        )
        condenser.wal_dir = wal_dir
        condenser.checkpoint_every = int(checkpoint_every)
        condenser.fsync_every = int(fsync_every)
        condenser._manager = manager
        condenser._manager.bind(condenser._durable_state)
        condenser._maintainer = maintainer
        condenser._position = position
        condenser._window_restored = False
        condenser._attach_journal()
        return condenser

    def restore_window(self, records) -> "SlidingWindowCondenser":
        """Refill the window buffer after :meth:`recover`.

        Parameters
        ----------
        records:
            2-D array of the last ``min(position, window)`` stream
            records, oldest first — exactly the window contents at the
            durable frontier.  The caller re-feeds these from its own
            upstream source; the durability layer never stored them.
        """
        if self._window_restored:
            raise RuntimeError(
                "window is already populated; restore_window() only "
                "applies immediately after recover()"
            )
        restored = np.asarray(records, dtype=float)
        if restored.ndim != 2:
            raise ValueError(
                f"records must be 2-D, got shape {restored.shape}"
            )
        expected = min(self._position, self.window)
        if restored.shape[0] != expected:
            raise ValueError(
                f"expected the last {expected} stream records, got "
                f"{restored.shape[0]}"
            )
        for row in restored:
            # Same trust-model note as push(): transient window only.
            # repro-lint: disable-next=PRIV-001 -- transient window buffer
            self._buffer.append(np.array(row, dtype=float))
        self._window_restored = True
        return self

    def _attach_journal(self) -> None:
        """Route maintainer sub-operations into the pending-op list."""
        self._ops = []
        self._maintainer.journal = self._ops.append

    def _durable_state(self) -> dict:
        """Checkpoint document: statistics, position, and window size."""
        return {
            "maintainer": self._maintainer.state_dict(),
            "position": self._position,
            "window": self.window,
        }

    def _flush_ops(self, kind: str = "op") -> None:
        """Write one completed push's journal as a single WAL entry.

        A push that both adds and expires is one atomic entry, so
        recovery can never observe a half-applied push.  Memory is
        mutated first, then logged: a crash in between loses only the
        latest push, which the at-least-once re-feed replays.  The
        fill-phase batch path passes ``kind="batch"`` so a whole block
        travels as one entry.
        """
        if self._manager is None or not self._ops:
            return
        entry = {"kind": kind, "pos": self._position,
                 "ops": list(self._ops)}
        self._ops.clear()
        self._manager.append(entry)

    def __repr__(self) -> str:
        return (
            f"SlidingWindowCondenser(k={self.k}, window={self.window}, "
            f"n_seen={self.n_seen}, warm={self.is_warm})"
        )

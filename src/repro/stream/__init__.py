"""Data-stream abstractions for the dynamic condensation setting."""

from repro.stream.sources import (
    ArrayStream,
    DriftingGaussianStream,
    interleave_streams,
)
from repro.stream.windowed import SlidingWindowCondenser

__all__ = [
    "ArrayStream",
    "DriftingGaussianStream",
    "interleave_streams",
    "SlidingWindowCondenser",
]

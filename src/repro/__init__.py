"""repro — condensation-based privacy preserving data mining.

A full reproduction of Aggarwal & Yu, *A Condensation Approach to
Privacy Preserving Data Mining*: condense a data set into groups of at
least ``k`` records, retain only per-group first/second-order sums, and
regenerate anonymized records that preserve inter-attribute
correlations — so existing mining algorithms run on the output
unchanged.

Quickstart
----------
>>> import numpy as np
>>> from repro import StaticCondenser
>>> data = np.random.default_rng(0).normal(size=(300, 5))
>>> anonymized = StaticCondenser(k=20, random_state=0).fit_generate(data)
>>> anonymized.shape
(300, 5)

Package map
-----------
* :mod:`repro.core` — the paper's algorithms (Figs. 1-4, §2.1).
* :mod:`repro.parallel` — sharded parallel condensation with a
  worker-count-independent determinism contract.
* :mod:`repro.datasets` — UCI statistical twins and generators.
* :mod:`repro.neighbors`, :mod:`repro.mining` — from-scratch mining
  algorithms that consume the anonymized output.
* :mod:`repro.baselines` — the Agrawal-Srikant perturbation approach.
* :mod:`repro.privacy` — indistinguishability accounting and attacks.
* :mod:`repro.evaluation` — the paper's experimental protocol (§4).
"""

from repro.core import (
    ClasswiseCondenser,
    CondensedModel,
    DynamicCondenser,
    DynamicGroupMaintainer,
    GroupStatistics,
    StaticCondenser,
    create_condensed_groups,
    generate_anonymized_data,
    split_group_statistics,
)
from repro.metrics import covariance_compatibility
from repro.parallel import condense_sharded
from repro.privacy import linkage_attack, privacy_report

__version__ = "1.9.0"

__all__ = [
    "ClasswiseCondenser",
    "CondensedModel",
    "DynamicCondenser",
    "DynamicGroupMaintainer",
    "GroupStatistics",
    "StaticCondenser",
    "create_condensed_groups",
    "generate_anonymized_data",
    "split_group_statistics",
    "condense_sharded",
    "covariance_compatibility",
    "linkage_attack",
    "privacy_report",
    "__version__",
]

"""Sharded static condensation with a worker-pool execution engine.

The paper's condensed groups are described *entirely* by additive
statistics ``(Fs, Sc, n)`` — which makes static condensation
embarrassingly shardable: partition the database into
locality-preserving shards (:mod:`repro.parallel.sharding`), run
``CreateCondensedGroups`` on every shard independently, and
concatenate the per-shard group statistics into one model.  The only
seam is the privacy invariant at shard boundaries: a shard smaller
than ``k`` yields a group below the indistinguishability level, so an
explicit repair pass merges every undersized group into its nearest
neighbour (the coarsening machinery of :mod:`repro.core.coarsen`),
optionally re-splitting oversized merge products with the dynamic
split of :mod:`repro.core.dynamic`.

Determinism contract
--------------------
Shard seeds derive from ``random_state`` through
:func:`repro.linalg.rng.spawn_seed_sequences`: one root seed sequence,
one spawned child per shard.  The partition itself is deterministic,
and per-shard results are collected in shard order.  Consequently the
output depends only on ``(data, k, strategy, random_state, n_shards)``
— never on ``n_workers`` or the executor backend — and with
``n_shards=1`` the deterministic strategies (``"mdav"``) reproduce the
serial model bit for bit.
"""

from __future__ import annotations

import itertools
import logging
import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor, as_completed

import numpy as np

from repro import telemetry
from repro.core.coarsen import coarsen_model
from repro.core.condensation import create_condensed_groups
from repro.core.dynamic import split_group_statistics
from repro.core.statistics import CondensedModel, GroupStatistics
from repro.core.strategies import resolve_strategy
from repro.linalg.rng import rng_from_seed_sequence, spawn_seed_sequences
from repro.parallel.pool import (
    SubmitError,
    WorkerCrashError,
    get_shared_pool,
)
from repro.parallel.sharding import principal_axis_shards, shard_size_summary
from repro.parallel.shm import attach_payload, publish_payload
from repro.telemetry import DEFAULT_SECONDS_BUCKETS, DEFAULT_SIZE_BUCKETS

_logger = logging.getLogger("repro")

#: Executor backends accepted by :func:`condense_sharded`.
BACKENDS = ("auto", "process", "thread", "serial")

#: Repair policies for groups left under ``k`` by the shard merge.
REPAIR_POLICIES = ("merge", "merge_resplit")

#: First retry delay; doubles per attempt (``base * 2**(attempt-1)``).
RETRY_BASE_DELAY = 0.05

#: Per-run submission tokens for the shared warm pool.  An aborted run
#: leaves its in-flight tasks outstanding on the pool; their late
#: results carry the aborted run's token and are discarded by the next
#: run instead of being mistaken for its shards.
_RUN_TOKENS = itertools.count()


class ParallelDegradationWarning(UserWarning):
    """The engine degraded to a slower backend mid-run.

    The result is unchanged — the determinism contract holds on every
    backend — but throughput is not what the caller asked for, which a
    deployment should notice.  The warning carries structured fields
    so operators can alert on it without parsing the message.

    Attributes
    ----------
    from_backend:
        Backend that could not finish (``"process"`` or ``"thread"``).
    to_backend:
        Backend the pending shards moved to.
    n_pending:
        Shards still unfinished at the moment of degradation.
    reason:
        Human-readable cause (exception type and message).
    """

    def __init__(self, from_backend: str, to_backend: str,
                 n_pending: int, reason: str):
        self.from_backend = from_backend
        self.to_backend = to_backend
        self.n_pending = int(n_pending)
        self.reason = reason
        super().__init__(
            f"parallel backend degraded {from_backend} -> {to_backend} "
            f"with {n_pending} shard(s) pending: {reason}"
        )


class _PoolFailure(Exception):
    """A pool could not finish its shards; try the next backend."""

    def __init__(self, cause):
        super().__init__(str(cause))
        self.cause = cause


def _warn_degraded(from_backend: str, to_backend: str,
                   n_pending: int, cause) -> None:
    """Emit the structured degradation warning and matching log line."""
    reason = f"{type(cause).__name__}: {cause}"
    warnings.warn(
        ParallelDegradationWarning(
            from_backend, to_backend, n_pending, reason
        ),
        stacklevel=3,
    )
    _logger.warning(
        "%s pool could not finish %d shard(s) (%s); falling back to %s",
        from_backend, n_pending, reason, to_backend,
    )


def _condense_shard(task):
    """Condense one shard; runs inside a worker (process or thread).

    ``task`` is ``(records, k, strategy, sequence)``.  Returns the
    shard's group statistics and shard-local memberships; shards
    smaller than ``k`` yield a single undersized group for the merge
    step to repair.
    """
    records, k, strategy, sequence = task
    rng = rng_from_seed_sequence(sequence)
    with telemetry.span("parallel.condense_shard") as shard_span:
        shard_span.set_attribute("shard_size", int(records.shape[0]))
        if records.shape[0] >= k:
            model = create_condensed_groups(
                records, k, strategy=strategy, random_state=rng
            )
            return model.groups, model.metadata["memberships"]
        group = GroupStatistics.from_records(records)
        return [group], [np.arange(records.shape[0], dtype=np.int64)]


def _condense_shard_payload(descriptor, shard_index, k, strategy,
                            sequence):
    """Condense one shard read from a published zero-copy payload.

    The process-backend worker entry point: attaches to the shared
    payload (cached across this run's tasks), materializes only its
    own shard, and delegates to :func:`_condense_shard`.  Returns the
    shard result plus the attach latency (``0.0`` for cache hits) so
    the coordinator can observe it.
    """
    attachment = attach_payload(descriptor)
    attach_seconds = attachment.attach_seconds
    attachment.attach_seconds = 0.0
    records = attachment.shard_records(shard_index)
    return (
        _condense_shard((records, k, strategy, sequence)),
        attach_seconds,
    )


class _ShardMerger:
    """Streaming shard-order merge of per-shard condensation results.

    Results may *arrive* in completion order; they are merged the
    moment the shard-order prefix is complete, so membership mapping
    and group accumulation overlap with still-running shards instead
    of waiting for a full barrier.  The final group order is byte-for-
    byte the shard order — the determinism contract is untouched.
    """

    def __init__(self, shards):
        self._shards = shards
        self._arrived = [None] * len(shards)
        self._next = 0
        self.groups: list = []
        self.memberships: list = []

    def offer(self, index: int, result) -> None:
        """Accept one shard result; merge any completed prefix."""
        self._arrived[index] = result
        while (self._next < len(self._arrived)
               and self._arrived[self._next] is not None):
            shard = self._shards[self._next]
            shard_groups, shard_memberships = self._arrived[self._next]
            for group, local_members in zip(
                shard_groups, shard_memberships
            ):
                self.groups.append(group)
                self.memberships.append(
                    shard[np.asarray(local_members, dtype=np.int64)]
                )
            self._arrived[self._next] = None
            self._next += 1

    @property
    def complete(self) -> bool:
        """Whether every shard has been merged."""
        return self._next == len(self._arrived)


def _drain_warm_pool(pool, data, shards, tasks, pending, record,
                     max_retries):
    """Run the pending shards on the persistent process pool.

    The shard payload is published once (shared memory, or mmap files
    where unavailable); per-task pipe traffic is the descriptor plus
    scalars.  Worker deaths are respawned and retried *inside* the
    pool; task-level exceptions are retried here with exponential
    backoff, ``ValueError`` excepted (deterministic input error).

    Every submission is keyed ``(run_token, shard_index)``.  When a
    run aborts (input error, crashed worker, exhausted retries) its
    unfinished tasks stay outstanding on the shared pool; they finish
    — or fail against the by-then-closed payload — after the next run
    has started.  The token check below drops those stale deliveries
    so they can never be merged into another run's model or pollute
    its retry accounting.

    Raises
    ------
    _PoolFailure
        When a shard exhausts its retries or the pool cannot take
        work; the caller moves on to the next backend.
    """
    attempts = dict.fromkeys(pending, 0)
    token = next(_RUN_TOKENS)
    with publish_payload(data, shards) as payload, pool.run_lock:
        try:
            for index in pending:
                pool.submit(
                    _condense_shard_payload, payload.descriptor, index,
                    tasks[index][0], tasks[index][1], tasks[index][2],
                    key=(token, index),
                )
            outstanding = len(pending)
            while outstanding:
                completed = pool.next_result()
                key = completed.key
                if not (isinstance(key, tuple) and len(key) == 2
                        and key[0] == token):
                    # Stale delivery from a previous aborted run.
                    telemetry.counter_inc("parallel.stale_results")
                    continue
                index = key[1]
                error = completed.error
                if error is None:
                    result, attach_seconds = completed.value
                    if attach_seconds:
                        telemetry.histogram_observe(
                            "parallel.shm.attach_seconds",
                            float(attach_seconds),
                            buckets=DEFAULT_SECONDS_BUCKETS,
                        )
                    record(index, result)
                    outstanding -= 1
                    continue
                if isinstance(error, ValueError):
                    raise error
                if isinstance(error, (WorkerCrashError, SubmitError)):
                    raise _PoolFailure(error) from error
                attempts[index] += 1
                if attempts[index] > max_retries:
                    raise _PoolFailure(error) from error
                telemetry.counter_inc("parallel.retries")
                _logger.warning(
                    "shard %d failed (%s: %s); retry %d/%d",
                    index, type(error).__name__, error,
                    attempts[index], max_retries,
                )
                time.sleep(
                    RETRY_BASE_DELAY * 2 ** (attempts[index] - 1)
                )
                pool.submit(
                    _condense_shard_payload, payload.descriptor, index,
                    tasks[index][0], tasks[index][1], tasks[index][2],
                    key=(token, index),
                )
        except (ValueError, _PoolFailure):
            raise
        except Exception as error:
            # Structural failures (pool closed underneath us, pipe
            # plumbing): hand the shards to the next backend.
            raise _PoolFailure(error) from error


def _drain_thread_pool(data, shards, tasks, n_workers, pending, record,
                       max_retries):
    """Run the pending shards on a per-call thread pool.

    Threads share the address space, so shards are passed as direct
    array slices — no payload publication.  Retry semantics match the
    process path.

    Raises
    ------
    _PoolFailure
        When the pool breaks or a shard exhausts its retries.
    """
    attempts = dict.fromkeys(pending, 0)

    def shard_task(index):
        k, strategy, sequence = tasks[index]
        return (data[shards[index]], k, strategy, sequence)

    try:
        with ThreadPoolExecutor(max_workers=n_workers) as executor:
            futures = {
                executor.submit(_condense_shard, shard_task(index)):
                    index
                for index in pending
            }
            while futures:
                for future in as_completed(list(futures)):
                    index = futures.pop(future)
                    try:
                        result = future.result()
                    except ValueError:
                        raise
                    except Exception as error:
                        attempts[index] += 1
                        if attempts[index] > max_retries:
                            raise _PoolFailure(error) from error
                        telemetry.counter_inc("parallel.retries")
                        _logger.warning(
                            "shard %d failed (%s: %s); retry %d/%d",
                            index, type(error).__name__, error,
                            attempts[index], max_retries,
                        )
                        time.sleep(
                            RETRY_BASE_DELAY * 2 ** (attempts[index] - 1)
                        )
                        futures[
                            executor.submit(
                                _condense_shard, shard_task(index)
                            )
                        ] = index
                        continue
                    record(index, result)
    except (ValueError, _PoolFailure):
        raise
    except Exception as error:
        raise _PoolFailure(error) from error


def _run_shard_tasks(data, shards, tasks, n_workers: int, backend: str,
                     record, store=None, max_retries: int = 2,
                     pool=None) -> tuple:
    """Execute shard tasks on the selected backend.

    Every completed shard is delivered through ``record(index,
    result)`` *as it lands* — the caller merges and checkpoints
    incrementally.  With a
    :class:`~repro.durability.shards.ShardCheckpointStore`,
    already-completed shards are preloaded instead of recomputed.
    Failed shards are retried with exponential backoff; a pool that
    cannot finish falls back process → thread → serial (each
    degradation announced by a :class:`ParallelDegradationWarning`),
    because the result is backend-independent by construction.

    Returns
    -------
    tuple
        ``(effective_backend, degraded)`` — the backend that finished
        the pending shards and whether that required degrading below
        the requested backend.
    """
    pending = []
    for index in range(len(tasks)):
        if store is not None:
            cached = store.load(index)
            if cached is not None:
                record(index, cached, checkpointed=True)
                telemetry.counter_inc("parallel.checkpoint_hits")
                continue
        pending.append(index)
    if not pending:
        return "checkpoint", False

    done = set()

    def record_pending(index, result):
        done.add(index)
        record(index, result)

    degraded = False
    if not (backend == "serial" or n_workers <= 1 or len(pending) <= 1):
        if backend in ("auto", "process"):
            try:
                warm_pool = (
                    pool if pool is not None
                    else get_shared_pool(n_workers)
                )
                _drain_warm_pool(
                    warm_pool, data, shards, tasks, list(pending),
                    record_pending, max_retries,
                )
            except _PoolFailure as failure:
                pending = [i for i in pending if i not in done]
                degraded = True
                _warn_degraded(
                    "process", "thread", len(pending), failure.cause
                )
            else:
                return "process", False
        try:
            _drain_thread_pool(
                data, shards, tasks, n_workers, list(pending),
                record_pending, max_retries,
            )
        except _PoolFailure as failure:
            pending = [i for i in pending if i not in done]
            degraded = True
            telemetry.counter_inc("parallel.serial_fallbacks")
            _warn_degraded(
                "thread", "serial", len(pending), failure.cause
            )
        else:
            return "thread", degraded
    for index in pending:
        if index in done:
            continue
        k, strategy, sequence = tasks[index]
        record_pending(
            index,
            _condense_shard((data[shards[index]], k, strategy, sequence)),
        )
    return "serial", degraded


def _resolve_workers(n_workers, n_shards: int) -> int:
    """Normalize the worker count (default: one per shard, CPU-capped)."""
    if n_workers is None:
        return max(1, min(n_shards, os.cpu_count() or 1))
    n_workers = int(n_workers)
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    return n_workers


def _repair_undersized(model: CondensedModel) -> tuple[CondensedModel, int]:
    """Merge groups under ``k`` into their nearest neighbours.

    Reuses the coarsening machinery: merging until every group reaches
    ``model.k`` is exactly a coarsen to the model's own level.  Returns
    the repaired model and the number of merges performed.
    """
    if int(model.group_sizes.min()) >= model.k:
        return model, 0
    repaired = coarsen_model(model, model.k)
    n_repairs = model.n_groups - repaired.n_groups
    # Coarsening provenance keys describe a privacy-level raise, which
    # this is not; keep the lineage under a repair-specific name.
    lineage = repaired.metadata.pop("lineage", None)
    repaired.metadata.pop("coarsened_from", None)
    repaired.metadata["repair_lineage"] = lineage
    return repaired, n_repairs


def _resplit_oversized(
    model: CondensedModel, k: int
) -> tuple[CondensedModel, int]:
    """Split merge products of at least ``2k`` back into the size band.

    Splitting statistics re-derives child sums from moments, so the
    original record-to-group memberships can no longer be attributed;
    the memberships metadata is dropped when any split occurs.
    """
    groups = list(model.groups)
    n_resplits = 0
    position = 0
    while position < len(groups):
        if groups[position].count >= 2 * k:
            first, second = split_group_statistics(groups[position])
            groups[position] = first
            groups.append(second)
            n_resplits += 1
        else:
            position += 1
    if n_resplits == 0:
        return model, 0
    resplit = CondensedModel(groups=groups, k=model.k)
    resplit.metadata = dict(model.metadata)
    resplit.metadata.pop("memberships", None)
    return resplit, n_resplits


def condense_sharded(
    data: np.ndarray,
    k: int,
    strategy="random",
    random_state=None,
    n_shards: int = 2,
    n_workers=None,
    backend: str = "auto",
    repair: str = "merge",
    checkpoint_dir=None,
    max_retries: int = 2,
    pool=None,
) -> CondensedModel:
    """Condense a database in locality-preserving shards.

    The parallel counterpart of
    :func:`repro.core.condensation.create_condensed_groups`: the data
    is partitioned by recursive principal-axis bisection, each shard is
    condensed independently in a worker pool, and the per-shard models
    are merged through the additivity of ``(Fs, Sc, n)``.  Groups left
    under ``k`` by the merge (only possible when a shard holds fewer
    than ``k`` records) are repaired by merging them into their
    nearest neighbour, so the returned model always satisfies the
    privacy invariant ``min group size >= k``.

    Parameters
    ----------
    data:
        Record array of shape ``(n, d)`` with ``n >= k``.
    k:
        Indistinguishability level — the minimum group size.
    strategy:
        Seed-selection strategy name or object, as accepted by
        :func:`repro.core.strategies.resolve_strategy`.  Object
        strategies must be picklable to cross the process boundary;
        unpicklable ones fall back to the thread backend.
    random_state:
        Seed or generator; shard seeds are spawned from it via
        :func:`repro.linalg.rng.spawn_seed_sequences`, so results are
        reproducible for a fixed ``n_shards`` under any worker count.
    n_shards:
        Number of spatial shards.  ``1`` runs the whole database as a
        single shard (bit-identical to the serial path for
        deterministic strategies such as ``"mdav"``).
    n_workers:
        Worker-pool size; ``None`` uses one worker per shard, capped
        at the CPU count.  ``1`` condenses shards serially in-process.
    backend:
        ``"auto"`` (default: processes with thread/serial fallback),
        ``"process"``, ``"thread"``, or ``"serial"``.
    repair:
        ``"merge"`` (default) merges undersized boundary groups into
        their nearest neighbour; ``"merge_resplit"`` additionally
        re-splits merge products that reached ``2k`` records via
        :func:`repro.core.dynamic.split_group_statistics` (dropping
        membership metadata, which a statistics split cannot carry).
    checkpoint_dir:
        Directory for per-shard result checkpoints.  Each completed
        shard's group statistics are persisted by the coordinator as
        they land; re-running the identical configuration after a
        crash reloads finished shards instead of recomputing them.
        Requires an *integer* ``random_state`` — the fingerprint that
        keys checkpoints to their run cannot capture a bare
        generator's draw position.  Checkpoints hold statistics and
        index lineage only, never record values.
    max_retries:
        Per-shard retry budget for transient worker failures, with
        exponential backoff (``RETRY_BASE_DELAY * 2**(attempt - 1)``).
        ``ValueError`` from a shard is treated as a deterministic
        input error and never retried.  Worker *death* (e.g. an
        OOM kill) is respawned and retried inside the warm pool
        independently of this budget.
    pool:
        A :class:`repro.parallel.pool.WorkerPool` to run process-
        backend shards on.  ``None`` (default) uses the module-shared
        warm pool (:func:`repro.parallel.pool.get_shared_pool`), which
        persists across calls so repeated condensations skip worker
        spawn entirely.  Pass an explicitly owned pool to control its
        lifetime (e.g. a service embedding the engine).

    Returns
    -------
    CondensedModel
        Merged model with ``metadata["parallel"]`` recording the shard
        plan, worker settings and repair counts; ``memberships``
        metadata maps groups to original record indices (unless a
        resplit dropped it).

    Raises
    ------
    ValueError
        If the inputs fail validation, or ``backend`` / ``repair`` is
        unknown.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if not np.isfinite(data).all():
        raise ValueError(
            "data contains NaN or infinite values; impute or drop them "
            "before condensation"
        )
    n = data.shape[0]
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if n < k:
        raise ValueError(
            f"need at least k={k} records to condense, got {n}"
        )
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    if repair not in REPAIR_POLICIES:
        raise ValueError(
            f"repair must be one of {REPAIR_POLICIES}, got {repair!r}"
        )
    max_retries = int(max_retries)
    if max_retries < 0:
        raise ValueError(f"max_retries must be >= 0, got {max_retries}")
    if checkpoint_dir is not None and not isinstance(
        random_state, (int, np.integer)
    ):
        raise ValueError(
            "shard checkpointing requires an integer random_state "
            "seed: the run fingerprint cannot capture a generator's "
            "draw position across processes"
        )
    strategy = resolve_strategy(strategy)

    with telemetry.span("parallel.condense_sharded") as parallel_span:
        parallel_span.set_attribute("n_records", n)
        parallel_span.set_attribute("k", k)
        parallel_span.set_attribute("strategy", strategy.name)

        with telemetry.span("parallel.shard_plan"):
            shards = principal_axis_shards(data, n_shards)
        summary = shard_size_summary(shards)
        n_workers = _resolve_workers(n_workers, len(shards))
        parallel_span.set_attribute("n_shards", summary["n_shards"])
        parallel_span.set_attribute("n_workers", n_workers)
        telemetry.counter_inc("parallel.shards", summary["n_shards"])
        telemetry.gauge_set("parallel.workers", n_workers)
        for shard in shards:
            telemetry.histogram_observe(
                "parallel.shard_size", int(shard.shape[0]),
                buckets=DEFAULT_SIZE_BUCKETS,
            )

        store = None
        if checkpoint_dir is not None:
            from repro.durability.shards import (
                ShardCheckpointStore,
                shard_fingerprint,
            )

            fingerprint = shard_fingerprint(
                data, k, strategy.name, len(shards), int(random_state)
            )
            store = ShardCheckpointStore(checkpoint_dir, fingerprint)

        sequences = spawn_seed_sequences(random_state, len(shards))
        tasks = [
            (k, strategy, sequence) for sequence in sequences
        ]
        merger = _ShardMerger(shards)

        def record(index, result, checkpointed=False):
            # Checkpoint first (durability), then merge the completed
            # prefix — overlapping merge work with in-flight shards.
            if store is not None and not checkpointed:
                store.store(index, result)
            merger.offer(index, result)

        effective_backend, degraded = _run_shard_tasks(
            data, shards, tasks, n_workers, backend, record,
            store=store, max_retries=max_retries, pool=pool,
        )
        if not merger.complete:  # pragma: no cover - defensive
            raise RuntimeError("shard results incomplete after run")

        with telemetry.span("parallel.merge") as merge_span:
            model = CondensedModel(groups=merger.groups, k=k)
            model.metadata["memberships"] = merger.memberships

            undersized = model.group_sizes[model.group_sizes < k]
            for size in undersized:
                telemetry.histogram_observe(
                    "parallel.repair_group_size", int(size),
                    buckets=DEFAULT_SIZE_BUCKETS,
                )
            model, n_repairs = _repair_undersized(model)
            telemetry.counter_inc("parallel.merge_repairs", n_repairs)
            n_resplits = 0
            if repair == "merge_resplit":
                model, n_resplits = _resplit_oversized(model, k)
                telemetry.counter_inc("parallel.resplits", n_resplits)
            merge_span.set_attribute("n_groups", model.n_groups)
            merge_span.set_attribute("n_merge_repairs", n_repairs)
            merge_span.set_attribute("n_resplits", n_resplits)

        model.metadata["strategy"] = strategy.name
        model.metadata["parallel"] = {
            "n_shards": summary["n_shards"],
            "shard_min_size": summary["min_size"],
            "shard_max_size": summary["max_size"],
            "n_workers": n_workers,
            "backend": backend,
            "repair": repair,
            "n_merge_repairs": n_repairs,
            "n_resplits": n_resplits,
            "max_retries": max_retries,
            "checkpointed": store is not None,
            "effective_backend": effective_backend,
            "degraded": degraded,
        }
        parallel_span.set_attribute("n_groups", model.n_groups)
        return model

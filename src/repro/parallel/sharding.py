"""Locality-preserving sharding by recursive principal-axis bisection.

Sharded condensation only preserves the serial algorithm's utility if
every shard is a spatially coherent chunk of the data: groups are
formed from nearest neighbours, so a shard boundary that cuts through
a dense region costs information the merge step cannot recover.  The
partitioner here reuses the same machinery the paper's dynamic split
rests on — the covariance eigendecomposition of
:mod:`repro.linalg.symmetric` — and recursively bisects the data at
the *median projection onto the principal axis*, always splitting the
currently largest part.  The result is a balanced partition whose
parts are separated along the locally most elongated directions,
exactly where cutting loses the least neighbourhood structure.

The procedure is fully deterministic: ties in the projection are
resolved by a stable argsort, so a given ``(data, n_shards)`` pair
always yields the same partition regardless of worker count.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.symmetric import sorted_eigh, symmetrize


def principal_axis_bisect(
    data: np.ndarray, part: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Split one index part in two at the principal-axis median.

    Parameters
    ----------
    data:
        Full record array of shape ``(n, d)``.
    part:
        Indices (into ``data``) of the part to bisect; at least two.

    Returns
    -------
    left : numpy.ndarray
        Indices whose principal-axis projection is below the median
        (the larger half for odd-sized parts), in original order.
    right : numpy.ndarray
        The remaining indices, in original order.

    Raises
    ------
    ValueError
        If ``part`` holds fewer than two indices.
    """
    part = np.asarray(part, dtype=np.int64)
    if part.shape[0] < 2:
        raise ValueError(
            f"cannot bisect a part of {part.shape[0]} record(s)"
        )
    records = data[part]
    centered = records - records.mean(axis=0)
    covariance = symmetrize(centered.T @ centered / part.shape[0])
    eigenvalues, eigenvectors = sorted_eigh(covariance, clip=False)
    axis = eigenvectors[:, 0]
    projections = centered @ axis
    order = np.argsort(projections, kind="stable")
    half = (part.shape[0] + 1) // 2
    left_mask = np.zeros(part.shape[0], dtype=bool)
    left_mask[order[:half]] = True
    return part[left_mask], part[~left_mask]


def principal_axis_shards(
    data: np.ndarray, n_shards: int
) -> list[np.ndarray]:
    """Partition record indices into locality-preserving shards.

    Starting from the whole index range, the currently largest part is
    repeatedly bisected at its principal-axis median until ``n_shards``
    parts exist.  Because each cut halves the largest part, the final
    partition is balanced (``max_size <= 2 * min_size + 1``), and every
    shard is a contiguous slab in some sequence of principal directions.

    Parameters
    ----------
    data:
        Record array of shape ``(n, d)``.
    n_shards:
        Number of parts to produce; clamped to ``n`` when it exceeds
        the record count (one-record shards are the finest partition).

    Returns
    -------
    list of numpy.ndarray
        ``n_shards`` disjoint int64 index arrays covering ``range(n)``,
        each in ascending original order.  With ``n_shards=1`` the
        single shard is exactly ``arange(n)``.

    Raises
    ------
    ValueError
        If ``data`` is not 2-D or ``n_shards`` is not positive.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n = data.shape[0]
    n_shards = min(n_shards, n) if n else 1
    parts: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    while len(parts) < n_shards:
        sizes = [part.shape[0] for part in parts]
        largest = int(np.argmax(sizes))
        if sizes[largest] < 2:
            break
        part = parts.pop(largest)
        left, right = principal_axis_bisect(data, part)
        parts.insert(largest, right)
        parts.insert(largest, left)
    return [np.sort(part) for part in parts]


def shard_size_summary(shards: list[np.ndarray]) -> dict:
    """Scalar summary of a shard partition for metadata and telemetry.

    Parameters
    ----------
    shards:
        Index arrays as produced by :func:`principal_axis_shards`.

    Returns
    -------
    dict
        ``n_shards``, ``min_size``, ``max_size`` and ``total`` — all
        plain ints, safe as telemetry payloads and JSON metadata.
    """
    sizes = [int(shard.shape[0]) for shard in shards]
    return {
        "n_shards": len(sizes),
        "min_size": min(sizes) if sizes else 0,
        "max_size": max(sizes) if sizes else 0,
        "total": sum(sizes),
    }

"""Zero-copy shard payloads over shared memory (with an mmap fallback).

The sharded engine's original process backend pickled every shard's
record array into the worker pipe — at 10⁵ records the serialization
dominated the condensation it was supposed to parallelize.  This
module moves the payload out of the pipe: the coordinator *publishes*
the full record array plus the concatenated shard index arrays into
one ``multiprocessing.shared_memory`` block, and each worker
*attaches* a read-only view by name.  What crosses the pipe per task
is a tuple of strings and integers (the :class:`PayloadDescriptor`);
the records themselves are mapped, not copied, until the worker
fancy-indexes its own shard out of the view.

Where POSIX shared memory is unavailable (no ``/dev/shm``, sandboxed
interpreters) the payload degrades to memory-mapped ``.npy`` files
written through :mod:`repro.io.mmapio` — the same zero-copy attach
semantics via the OS page cache.

Lifetime discipline (policed by RES-001 and exercised by
``tests/parallel/test_shm.py``): the coordinator that publishes a
payload owns it.  ``close()`` both detaches and unlinks, is
idempotent, runs on success *and* failure via context-manager use in
the engine, and every live payload is additionally unlinked at
interpreter exit through an ``atexit`` hook — no leaked ``/dev/shm``
segments, ever.  An mmap-fallback directory whose removal fails (a
worker still holds the mapping) is logged and retried at the next
publish and at interpreter exit instead of silently leaking record
data.  Workers only ever attach; their cached attachments
are dropped when a new payload supersedes the old one and when the
worker loop exits.
"""

from __future__ import annotations

import atexit
import logging
import os
import shutil
import sys
import tempfile
import time
from typing import NamedTuple

import numpy as np

from repro import telemetry
from repro.io.mmapio import open_array_mmap, write_array_mmap

try:  # pragma: no cover - import failure exercised via monkeypatch
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

_logger = logging.getLogger("repro")

#: Payload backends, in preference order.
PAYLOAD_BACKENDS = ("shm", "mmap")


class PayloadDescriptor(NamedTuple):
    """Picklable handle to a published payload (strings and ints only).

    Attributes
    ----------
    backend:
        ``"shm"`` (named shared-memory block) or ``"mmap"``
        (directory of memory-mapped ``.npy`` files).
    token:
        Shared-memory block name, or the mmap directory path.
    data_shape:
        Shape of the published record array.
    data_dtype:
        Dtype string of the published record array.
    index_offset:
        Byte offset of the concatenated shard indices inside the
        shared block (unused for the mmap backend).
    shard_offsets:
        ``n_shards + 1`` cumulative offsets into the concatenated
        index vector; shard ``i`` owns ``indices[off[i]:off[i + 1]]``.
    """

    backend: str
    token: str
    data_shape: tuple
    data_dtype: str
    index_offset: int
    shard_offsets: tuple


#: Payloads published by this process and not yet closed.
_LIVE_PAYLOADS: dict = {}

#: Mmap payload directories whose removal failed at close time (a
#: worker still held the mapping); removal is retried at the next
#: publish and at interpreter exit rather than silently leaking the
#: raw record data on disk.
_STALE_MMAP_DIRS: set = set()


def _publish_bytes_gauge() -> None:
    """Set ``parallel.shm.bytes`` to the total of live payload sizes."""
    telemetry.gauge_set(
        "parallel.shm.bytes",
        sum(payload.nbytes for payload in _LIVE_PAYLOADS.values()),
    )


def _remove_mmap_dir(directory: str) -> None:
    """Remove one payload directory, remembering it for retry on failure."""
    shutil.rmtree(directory, ignore_errors=True)
    if os.path.isdir(directory):
        _logger.warning(
            "payload directory %s could not be removed (a worker may "
            "still hold the mapping); removal will be retried at the "
            "next publish and at interpreter exit", directory,
        )
        # repro-lint: disable-next=DET-003 -- coordinator-only retry registry: reached from publish/close/atexit, never from worker-side attach code
        _STALE_MMAP_DIRS.add(directory)
    else:
        # repro-lint: disable-next=DET-003 -- coordinator-only retry registry: reached from publish/close/atexit, never from worker-side attach code
        _STALE_MMAP_DIRS.discard(directory)


def _sweep_stale_mmap_dirs() -> None:
    """Retry removal of payload directories that outlived their close."""
    for directory in list(_STALE_MMAP_DIRS):
        _remove_mmap_dir(directory)


def _unlink_live_payloads() -> None:
    """Interpreter-exit backstop: unlink every still-open payload."""
    for payload in list(_LIVE_PAYLOADS.values()):
        payload.close()
    _sweep_stale_mmap_dirs()


atexit.register(_unlink_live_payloads)


def _attach_untracked(name: str):
    """Attach to a named block without adopting tracker ownership.

    Attach-side registration is what makes Python's shared-memory
    resource tracker unlink segments other processes still use
    (bpo-38119); the publisher owns unlinking here.  Forked workers
    share the publisher's tracker, where the duplicate registration is
    idempotent and the publisher's unlink settles the books — only
    spawn/forkserver workers (own tracker that would wrongly unlink on
    worker exit) need the explicit opt-out.

    Parameters
    ----------
    name:
        Shared-memory block name from a :class:`PayloadDescriptor`.

    Returns
    -------
    multiprocessing.shared_memory.SharedMemory
    """
    if sys.version_info >= (3, 13):  # pragma: no cover - 3.13+ only
        return _shared_memory.SharedMemory(name=name, track=False)
    segment = _shared_memory.SharedMemory(name=name)
    try:
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - best effort on exotic VMs
        pass
    return segment


class ShardPayload:
    """A published shard payload; the publishing process owns it.

    Build one with :func:`publish_payload`; hand
    :attr:`descriptor` to workers; ``close()`` (or exit the ``with``
    block) when every consumer is done with the current run.
    """

    def __init__(self, descriptor: PayloadDescriptor, segment,
                 mmap_dir, nbytes: int):
        self.descriptor = descriptor
        self._segment = segment
        self._mmap_dir = mmap_dir
        self.nbytes = int(nbytes)
        self._closed = False
        _LIVE_PAYLOADS[id(self)] = self

    def close(self) -> None:
        """Detach and unlink the payload; safe to call twice."""
        if self._closed:
            return
        self._closed = True
        _LIVE_PAYLOADS.pop(id(self), None)
        if self._segment is not None:
            try:
                self._segment.close()
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._segment = None
        if self._mmap_dir is not None:
            _remove_mmap_dir(self._mmap_dir)
            self._mmap_dir = None
        _publish_bytes_gauge()

    @property
    def closed(self) -> bool:
        """Whether the payload has been unlinked."""
        return self._closed

    def __enter__(self):
        """Enter a ``with`` block owning the payload lifetime."""
        return self

    def __exit__(self, *exc_info):
        """Unlink on scope exit, success or failure."""
        self.close()
        return False

    def __repr__(self) -> str:
        """Terse state for logs."""
        state = "closed" if self._closed else f"{self.nbytes}B"
        return (f"ShardPayload({self.descriptor.backend}, "
                f"{self.descriptor.token!r}, {state})")


def _publish_shm(data: np.ndarray, indices: np.ndarray,
                 shard_offsets: tuple) -> ShardPayload:
    """Publish into one named shared-memory block."""
    index_offset = -(-data.nbytes // 8) * 8
    total = index_offset + indices.nbytes
    segment = _shared_memory.SharedMemory(create=True, size=max(total, 1))
    view = np.ndarray(data.shape, dtype=data.dtype, buffer=segment.buf)
    view[...] = data
    index_view = np.ndarray(indices.shape, dtype=indices.dtype,
                            buffer=segment.buf, offset=index_offset)
    index_view[...] = indices
    descriptor = PayloadDescriptor(
        backend="shm", token=segment.name,
        data_shape=tuple(data.shape), data_dtype=str(data.dtype),
        index_offset=index_offset, shard_offsets=shard_offsets,
    )
    return ShardPayload(descriptor, segment, None, total)


def _publish_mmap(data: np.ndarray, indices: np.ndarray,
                  shard_offsets: tuple) -> ShardPayload:
    """Publish as memory-mapped ``.npy`` files in a temp directory."""
    directory = tempfile.mkdtemp(prefix="repro-payload-")
    # repro-lint: disable-next=PRIV-003 -- in-flight worker hand-off, not anonymized output: the run's own records move to its own workers and the files are unlinked when the run ends
    nbytes = write_array_mmap(os.path.join(directory, "data.npy"), data)
    nbytes += write_array_mmap(
        os.path.join(directory, "indices.npy"), indices
    )
    descriptor = PayloadDescriptor(
        backend="mmap", token=directory,
        data_shape=tuple(data.shape), data_dtype=str(data.dtype),
        index_offset=0, shard_offsets=shard_offsets,
    )
    return ShardPayload(descriptor, None, directory, nbytes)


def publish_payload(data: np.ndarray, shards) -> ShardPayload:
    """Publish a record array and its shard plan for worker attachment.

    Parameters
    ----------
    data:
        Full record array of shape ``(n, d)``.
    shards:
        Shard index arrays from
        :func:`repro.parallel.sharding.principal_axis_shards`.

    Returns
    -------
    ShardPayload
        Owned payload whose :attr:`~ShardPayload.descriptor` crosses
        the worker pipe instead of the records.
    """
    _sweep_stale_mmap_dirs()
    data = np.ascontiguousarray(data)
    indices = (
        np.concatenate(shards) if shards
        else np.empty(0, dtype=np.int64)
    ).astype(np.int64, copy=False)
    offsets = [0]
    for shard in shards:
        offsets.append(offsets[-1] + int(shard.shape[0]))
    shard_offsets = tuple(offsets)
    payload = None
    if _shared_memory is not None:
        try:
            payload = _publish_shm(data, indices, shard_offsets)
        except OSError:
            payload = None
    if payload is None:
        payload = _publish_mmap(data, indices, shard_offsets)
    _publish_bytes_gauge()
    return payload


class PayloadAttachment:
    """A worker-side read-only attachment to a published payload."""

    def __init__(self, descriptor: PayloadDescriptor):
        self.descriptor = descriptor
        self.attach_seconds = 0.0
        start = time.perf_counter()
        if descriptor.backend == "shm":
            self._segment = _attach_untracked(descriptor.token)
            shape = tuple(descriptor.data_shape)
            dtype = np.dtype(descriptor.data_dtype)
            view = np.ndarray(shape, dtype=dtype, buffer=self._segment.buf)
            n_indices = descriptor.shard_offsets[-1]
            self._indices = np.ndarray(
                (n_indices,), dtype=np.int64,
                buffer=self._segment.buf, offset=descriptor.index_offset,
            )
        else:
            self._segment = None
            view = open_array_mmap(
                os.path.join(descriptor.token, "data.npy")
            )
            self._indices = open_array_mmap(
                os.path.join(descriptor.token, "indices.npy")
            )
        view.flags.writeable = False
        self._view = view
        self.attach_seconds = time.perf_counter() - start

    def shard_records(self, shard_index: int) -> np.ndarray:
        """Materialize one shard's records from the mapped view.

        Parameters
        ----------
        shard_index:
            Position of the shard in the published shard plan.

        Returns
        -------
        numpy.ndarray
            A fresh array holding only this shard's records — the one
            copy the worker actually needs.
        """
        offsets = self.descriptor.shard_offsets
        span = self._indices[
            offsets[shard_index]:offsets[shard_index + 1]
        ]
        return np.asarray(self._view[span], dtype=float)

    def detach(self) -> None:
        """Drop the mapped view; never unlinks (the publisher owns that)."""
        self._view = None
        self._indices = None
        if self._segment is not None:
            try:
                self._segment.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._segment = None


#: The worker's cached attachment (one payload live at a time).
_WORKER_ATTACHMENT: list = []


def attach_payload(descriptor: PayloadDescriptor) -> PayloadAttachment:
    """Attach to a payload, reusing the worker's cached attachment.

    Successive tasks of one ``condense_sharded`` run share a payload,
    so the worker pays the attach latency once; a descriptor for a
    *different* payload supersedes (and detaches) the cached one.

    Parameters
    ----------
    descriptor:
        Descriptor received with the task.

    Returns
    -------
    PayloadAttachment
    """
    if _WORKER_ATTACHMENT:
        cached = _WORKER_ATTACHMENT[0]
        if cached.descriptor.token == descriptor.token:
            return cached
        cached.detach()
        # repro-lint: disable-next=DET-003 -- worker-local attachment cache: pure memoization of a read-only view, cannot affect results
        _WORKER_ATTACHMENT.clear()
    attachment = PayloadAttachment(descriptor)
    # repro-lint: disable-next=DET-003 -- worker-local attachment cache: pure memoization of a read-only view, cannot affect results
    _WORKER_ATTACHMENT.append(attachment)
    return attachment


def detach_worker_payloads() -> None:
    """Drop the worker's cached attachment (worker-loop exit hook)."""
    while _WORKER_ATTACHMENT:
        _WORKER_ATTACHMENT.pop().detach()

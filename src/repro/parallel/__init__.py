"""repro.parallel — sharded parallel condensation.

A condensed group is fully described by the additive statistics
``(Fs, Sc, n)`` (paper §2), so static condensation shards cleanly:
partition the database into locality-preserving spatial shards,
condense each shard independently in a worker pool, and merge the
per-shard models through statistics additivity.  An explicit repair
pass keeps the privacy invariant ``min group size >= k`` across shard
boundaries.

Entry points
------------
* :func:`condense_sharded` — the sharded engine; also reachable as
  ``create_condensed_groups(..., n_shards=, n_workers=)`` and the
  CLI's ``--shards`` / ``--workers`` flags.
* :func:`principal_axis_shards` — the recursive principal-axis
  bisection partitioner.

Determinism: shard seeds are spawned from ``random_state`` with
:func:`repro.linalg.rng.spawn_seed_sequences`, so for a fixed shard
count the result never depends on the worker count or backend.  See
``docs/parallel.md`` for the design and the differential-testing
harness that proves shard-merge equals serial.
"""

from repro.parallel.engine import (
    BACKENDS,
    REPAIR_POLICIES,
    condense_sharded,
)
from repro.parallel.sharding import (
    principal_axis_bisect,
    principal_axis_shards,
    shard_size_summary,
)

__all__ = [
    "BACKENDS",
    "REPAIR_POLICIES",
    "condense_sharded",
    "principal_axis_bisect",
    "principal_axis_shards",
    "shard_size_summary",
]

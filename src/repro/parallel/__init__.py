"""repro.parallel — sharded parallel condensation.

A condensed group is fully described by the additive statistics
``(Fs, Sc, n)`` (paper §2), so static condensation shards cleanly:
partition the database into locality-preserving spatial shards,
condense each shard independently in a worker pool, and merge the
per-shard models through statistics additivity.  An explicit repair
pass keeps the privacy invariant ``min group size >= k`` across shard
boundaries.

Entry points
------------
* :func:`condense_sharded` — the sharded engine; also reachable as
  ``create_condensed_groups(..., n_shards=, n_workers=)`` and the
  CLI's ``--shards`` / ``--workers`` flags.
* :func:`principal_axis_shards` — the recursive principal-axis
  bisection partitioner.
* :class:`WorkerPool` / :func:`get_shared_pool` — the persistent warm
  worker pool the process backend runs on (:mod:`repro.parallel.pool`).
* :func:`publish_payload` / :func:`attach_payload` — the zero-copy
  shared-memory shard payloads (:mod:`repro.parallel.shm`).

Determinism: shard seeds are spawned from ``random_state`` with
:func:`repro.linalg.rng.spawn_seed_sequences`, so for a fixed shard
count the result never depends on the worker count or backend.  A
backend that degrades mid-run announces it with
:class:`ParallelDegradationWarning` without changing the result.  See
``docs/parallel.md`` for the design and ``docs/performance.md`` for
the measured serial/process crossover.
"""

from repro.parallel.engine import (
    BACKENDS,
    REPAIR_POLICIES,
    ParallelDegradationWarning,
    condense_sharded,
)
from repro.parallel.pool import (
    SubmitError,
    TaskResult,
    WorkerCrashError,
    WorkerPool,
    get_shared_pool,
    shutdown_shared_pool,
)
from repro.parallel.sharding import (
    principal_axis_bisect,
    principal_axis_shards,
    shard_size_summary,
)
from repro.parallel.shm import (
    PAYLOAD_BACKENDS,
    PayloadDescriptor,
    ShardPayload,
    attach_payload,
    publish_payload,
)

__all__ = [
    "BACKENDS",
    "PAYLOAD_BACKENDS",
    "ParallelDegradationWarning",
    "PayloadDescriptor",
    "REPAIR_POLICIES",
    "ShardPayload",
    "SubmitError",
    "TaskResult",
    "WorkerCrashError",
    "WorkerPool",
    "attach_payload",
    "condense_sharded",
    "get_shared_pool",
    "principal_axis_bisect",
    "principal_axis_shards",
    "publish_payload",
    "shard_size_summary",
    "shutdown_shared_pool",
]

"""A persistent, health-checked worker-process pool.

``concurrent.futures.ProcessPoolExecutor`` gave the sharded engine a
pool per call: every ``condense_sharded`` paid worker spawn on entry
and teardown on exit, and a single dead worker condemned the whole
executor (``BrokenProcessPool``).  :class:`WorkerPool` replaces it
with the lifecycle a long-running anonymization plane actually wants:

* **lazy spawn** — constructing the pool starts nothing; workers fork
  on first dispatch, up to ``n_workers``;
* **warm reuse** — the pool survives across ``condense_sharded``
  calls (module-shared instance via :func:`get_shared_pool`), so only
  the first call pays spawn latency;
* **health-checked respawn** — a worker that dies (OOM-killed,
  ``SIGKILL``) is detected through its pipe, replaced, and its
  in-flight task is transparently resubmitted up to ``restart_limit``
  times (``parallel.pool.respawns`` counts replacements);
* **idle reaping** — workers idle longer than ``idle_timeout``
  seconds are retired; the next burst of work respawns them;
* **explicit close** — ``close()`` / ``with`` tears everything down;
  the shared pool is additionally closed at interpreter exit.

Tasks are dispatched over per-worker pipes, so the coordinator always
knows *which* task a dead worker held — the property that makes
respawn-with-retry deterministic.  Exceptions raised *by the task
function* are shipped back and delivered to the caller (retry policy
belongs to the caller); only infrastructure failures (worker death)
are retried inside the pool.

Thread safety: lifecycle calls (``submit``/``close``/``reap_idle``)
are serialized by an internal lock; result consumption is
single-consumer by design (one coordinator drains one run).
"""

from __future__ import annotations

import atexit
import itertools
import logging
import multiprocessing
# repro-lint: disable-next=PRIV-001 -- imported for PicklingError only; no record data is serialized here
import pickle
import threading
import time
from collections import deque
from multiprocessing import connection
from typing import NamedTuple

from repro import telemetry
from repro.parallel.shm import detach_worker_payloads

_logger = logging.getLogger("repro")

#: How long one ``wait`` tick lasts before the liveness sweep runs.
POLL_SECONDS = 0.2


class WorkerCrashError(RuntimeError):
    """A task's worker died more times than the pool may restart it."""


class SubmitError(RuntimeError):
    """A task or its result could not cross the worker pipe.

    Raised on the submit side when no worker can ever take the task
    (unpicklable function or arguments) and shipped back from the
    worker when the task's *return value* cannot be serialized — both
    are deterministic serialization faults, so neither is retried.
    """


class TaskResult(NamedTuple):
    """One completed task, delivered by :meth:`WorkerPool.next_result`.

    Attributes
    ----------
    key:
        The ``key`` given to :meth:`WorkerPool.submit`.
    value:
        The task function's return value (``None`` on error).
    error:
        The exception the task raised, a :class:`WorkerCrashError`, or
        a :class:`SubmitError`; ``None`` on success.
    """

    key: object
    value: object
    error: object


def _worker_main(conn) -> None:
    """Worker-process loop: serve tasks until the stop sentinel.

    Parameters
    ----------
    conn:
        Child end of the worker's duplex pipe; messages are
        ``(task_id, function, args)`` tuples, ``None`` to stop.
    """
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            task_id, function, args = message
            try:
                value = function(*args)
            except Exception as error:
                try:
                    conn.send(("error", task_id, error))
                except Exception:
                    try:
                        conn.send(
                            ("error", task_id, RuntimeError(repr(error)))
                        )
                    except Exception:
                        break  # torn pipe: let the parent see a death
            else:
                try:
                    conn.send(("ok", task_id, value))
                except Exception as error:
                    # An unpicklable (or pipe-breaking) return value
                    # must fail the *task*, not the worker — otherwise
                    # the pool respawns and resubmits the same task
                    # until restart_limit for a deterministic error.
                    try:
                        conn.send(("error", task_id, SubmitError(
                            f"task result could not be shipped back: "
                            f"{type(error).__name__}: {error}"
                        )))
                    except Exception:
                        break  # torn pipe: let the parent see a death
    finally:
        detach_worker_payloads()
        conn.close()


class _Task:
    """Book-keeping for one submitted task."""

    __slots__ = ("task_id", "key", "function", "args", "restarts")

    def __init__(self, task_id, key, function, args):
        self.task_id = task_id
        self.key = key
        self.function = function
        self.args = args
        self.restarts = 0


class _Worker:
    """Parent-side handle to one worker process."""

    __slots__ = ("process", "conn", "task", "idle_since")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task = None
        self.idle_since = time.monotonic()


class WorkerPool:
    """Persistent pool of worker processes with automatic respawn.

    Parameters
    ----------
    n_workers:
        Maximum concurrent worker processes.
    idle_timeout:
        Seconds a worker may sit idle before being retired; ``None``
        (default) keeps idle workers alive until :meth:`close`.
    restart_limit:
        How many times one task may be resubmitted after losing its
        worker before it is delivered as a :class:`WorkerCrashError`.
    """

    def __init__(self, n_workers: int, idle_timeout=None,
                 restart_limit: int = 2):
        n_workers = int(n_workers)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.idle_timeout = idle_timeout
        self.restart_limit = int(restart_limit)
        self._context = multiprocessing.get_context()
        self._workers: list = []
        self._queue: deque = deque()
        self._delivery: deque = deque()
        self._outstanding = 0
        self._task_ids = itertools.count()
        self._closed = False
        self._lock = threading.RLock()
        #: Serializes whole runs: the pool is single-consumer, so a
        #: coordinator holds this while it drains its submissions.
        self.run_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def alive_count(self) -> int:
        """Number of live worker processes right now."""
        with self._lock:
            return sum(
                1 for worker in self._workers
                if worker.process.is_alive()
            )

    def worker_pids(self) -> list:
        """PIDs of live workers (stable across warm reuse)."""
        with self._lock:
            return sorted(
                worker.process.pid for worker in self._workers
                if worker.process.is_alive()
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _spawn(self) -> _Worker:
        """Start one worker process (lazy; called from dispatch)."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name="repro-pool-worker",
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn)
        self._workers.append(worker)
        telemetry.counter_inc("parallel.pool.spawns")
        self._publish_gauges()
        return worker

    def _retire(self, worker: _Worker) -> None:
        """Stop one worker and forget it."""
        try:
            worker.conn.send(None)
        except (OSError, ValueError):
            pass
        worker.conn.close()
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():  # pragma: no cover - stuck worker
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        if worker in self._workers:
            self._workers.remove(worker)
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        """Refresh the pool liveness gauge."""
        telemetry.gauge_set(
            "parallel.pool.workers_alive",
            sum(1 for w in self._workers if w.process.is_alive()),
        )

    def ensure_workers(self, n_workers: int) -> None:
        """Raise the worker ceiling (shared-pool resize; never shrinks).

        Parameters
        ----------
        n_workers:
            Requested ceiling; ignored when at or below the current one.
        """
        with self._lock:
            self.n_workers = max(self.n_workers, int(n_workers))

    def reap_idle(self) -> int:
        """Retire workers idle beyond ``idle_timeout``.

        Returns
        -------
        int
            Number of workers retired.
        """
        if self.idle_timeout is None:
            return 0
        now = time.monotonic()
        retired = 0
        with self._lock:
            for worker in list(self._workers):
                if (worker.task is None
                        and now - worker.idle_since > self.idle_timeout):
                    self._retire(worker)
                    retired += 1
        return retired

    def close(self) -> None:
        """Stop every worker and reject further submissions; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in list(self._workers):
                self._retire(worker)
            self._queue.clear()
            self._outstanding = 0
            self._publish_gauges()

    def __enter__(self):
        """Use the pool as a scope-bound resource."""
        return self

    def __exit__(self, *exc_info):
        """Close on scope exit."""
        self.close()
        return False

    # ------------------------------------------------------------------
    # Dispatch and completion
    # ------------------------------------------------------------------

    def submit(self, function, *args, key=None) -> int:
        """Queue one task for execution.

        Parameters
        ----------
        function:
            Module-level callable to run in a worker (pickled by
            reference).
        *args:
            Positional arguments; must be picklable, and by CONC-002
            discipline must not capture live handles.
        key:
            Caller-side identity delivered back with the result
            (defaults to the internal task id).

        Returns
        -------
        int
            The internal task id.

        Raises
        ------
        RuntimeError
            If the pool is closed.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            task_id = next(self._task_ids)
            task = _Task(
                task_id, task_id if key is None else key, function, args
            )
            self._queue.append(task)
            self._outstanding += 1
            self.reap_idle()
            self._sweep_dead_idle()
            self._dispatch()
            return task_id

    def _sweep_dead_idle(self) -> None:
        """Drop idle workers whose process died underneath the pool."""
        for worker in list(self._workers):
            if worker.task is None and not worker.process.is_alive():
                telemetry.counter_inc("parallel.pool.respawns")
                self._retire(worker)

    def _dispatch(self) -> None:
        """Assign queued tasks to idle (spawning if needed) workers."""
        while self._queue:
            worker = next(
                (w for w in self._workers
                 if w.task is None and w.process.is_alive()),
                None,
            )
            if worker is None:
                if len(self._workers) >= self.n_workers:
                    return
                try:
                    worker = self._spawn()
                except OSError as error:
                    self._fail_queue(error)
                    return
            task = self._queue.popleft()
            try:
                worker.conn.send((task.task_id, task.function, task.args))
            except (pickle.PicklingError, TypeError,
                    AttributeError) as error:
                # Unpicklable payload: no worker can ever take it.
                self._deliver_error(task, SubmitError(str(error)))
                continue
            except (OSError, ValueError) as error:
                # Torn pipe: the worker died between dispatches.
                del error
                self._handle_death(worker, requeue=False)
                self._queue.appendleft(task)
                continue
            worker.task = task

    def _fail_queue(self, error) -> None:
        """Deliver a spawn failure to every queued task."""
        while self._queue:
            self._deliver_error(
                self._queue.popleft(), SubmitError(str(error))
            )

    def _deliver_error(self, task: _Task, error) -> None:
        """Queue an error outcome for :meth:`next_result`."""
        self._delivery.append(TaskResult(task.key, None, error))

    def _handle_death(self, worker: _Worker, requeue: bool = True) -> None:
        """React to a dead worker: respawn accounting plus task retry."""
        telemetry.counter_inc("parallel.pool.respawns")
        task = worker.task
        worker.task = None
        self._retire(worker)
        if task is None or not requeue:
            return
        task.restarts += 1
        if task.restarts > self.restart_limit:
            self._deliver_error(task, WorkerCrashError(
                f"worker died {task.restarts} times running task "
                f"{task.key!r}"
            ))
            return
        _logger.warning(
            "pool worker died running task %r; respawning (restart "
            "%d/%d)", task.key, task.restarts, self.restart_limit,
        )
        self._queue.appendleft(task)

    def next_result(self, timeout=None) -> TaskResult:
        """Block until one outstanding task completes.

        Parameters
        ----------
        timeout:
            Overall seconds to wait; ``None`` waits indefinitely.

        Returns
        -------
        TaskResult
            Completion (or failure) of one submitted task, in
            completion order.

        Raises
        ------
        TimeoutError
            If nothing completes within ``timeout``.
        RuntimeError
            If no task is outstanding.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            with self._lock:
                if self._delivery:
                    self._outstanding -= 1
                    return self._delivery.popleft()
                if self._outstanding <= 0:
                    raise RuntimeError("no outstanding tasks")
                self._dispatch()
                busy = [
                    worker for worker in self._workers
                    if worker.task is not None
                ]
                conns = [worker.conn for worker in busy]
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    "no task completed within the timeout"
                )
            ready = connection.wait(conns, timeout=POLL_SECONDS)
            with self._lock:
                for ready_conn in ready:
                    worker = next(
                        (w for w in self._workers
                         if w.conn is ready_conn), None,
                    )
                    if worker is None:
                        continue
                    try:
                        status, task_id, value = worker.conn.recv()
                    except (EOFError, OSError):
                        self._handle_death(worker)
                        continue
                    task = worker.task
                    worker.task = None
                    worker.idle_since = time.monotonic()
                    if task is None:  # pragma: no cover - defensive
                        continue
                    if status == "ok":
                        self._delivery.append(
                            TaskResult(task.key, value, None)
                        )
                    else:
                        self._delivery.append(
                            TaskResult(task.key, None, value)
                        )
                # Backstop: a worker whose pipe never wakes but whose
                # process is gone (rare scheduler races).
                for worker in list(self._workers):
                    if (worker.task is not None
                            and not worker.process.is_alive()
                            and worker.conn not in ready):
                        self._handle_death(worker)
                self._dispatch()


# ----------------------------------------------------------------------
# Module-shared warm pool
# ----------------------------------------------------------------------

_SHARED_POOL: list = []
_SHARED_POOL_LOCK = threading.Lock()


def get_shared_pool(n_workers: int, idle_timeout=None) -> WorkerPool:
    """Return the process-wide warm pool, creating it on first use.

    Successive ``condense_sharded`` calls reuse the same pool (and its
    already-spawned workers); a call asking for more workers raises
    the ceiling in place.

    Parameters
    ----------
    n_workers:
        Minimum worker ceiling the caller needs.
    idle_timeout:
        Idle-reap threshold applied when the pool is first created.

    Returns
    -------
    WorkerPool
    """
    with _SHARED_POOL_LOCK:
        if _SHARED_POOL and not _SHARED_POOL[0].closed:
            pool = _SHARED_POOL[0]
            pool.ensure_workers(n_workers)
            return pool
        # repro-lint: disable-next=DET-003 -- coordinator-only registry; workers never reach here (condense_sharded is never nested inside a shard)
        _SHARED_POOL.clear()
        pool = WorkerPool(n_workers, idle_timeout=idle_timeout)
        # repro-lint: disable-next=DET-003 -- coordinator-only registry; workers never reach here (condense_sharded is never nested inside a shard)
        _SHARED_POOL.append(pool)
        return pool


def shutdown_shared_pool() -> None:
    """Close the shared warm pool, if one exists; idempotent."""
    with _SHARED_POOL_LOCK:
        if _SHARED_POOL:
            _SHARED_POOL.pop().close()


atexit.register(shutdown_shared_pool)

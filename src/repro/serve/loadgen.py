"""Replay UCI-shaped streams against a running ``repro serve``.

The traffic side of the serving benchmark: :func:`run_loadgen` drives a
deterministic endpoint mix — mostly ``/ingest`` with periodic
``/generate``, ``/model``, and ``/healthz`` probes — against a server at
a target QPS, paced on the monotonic clock, and reports per-endpoint
latency percentiles plus the achieved rate.  :func:`write_report`
publishes the result as ``BENCH_serve.json`` (atomic
write-fsync-replace, like every benchmark artifact in this repo).

This module is the *trusted client*: it synthesizes records with the
``repro.datasets`` twins and ships them raw to the server, which is
exactly the data holder's role in the paper — raw records exist
upstream of condensation by definition.  The whole-program taint rule
PRIV-003 sanctions this module for that reason (see
``repro.analysis.project.taint``).
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.datasets import load_twin

#: Default benchmark artifact filename.
DEFAULT_REPORT_PATH = "BENCH_serve.json"

#: Deterministic endpoint mix: every Nth request is diverted.
GENERATE_EVERY = 10
MODEL_EVERY = 25
HEALTHZ_EVERY = 50


def _request(base_url: str, endpoint: str, body=None,
             timeout: float = 10.0):
    """Issue one HTTP request and time it.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8000``.
    endpoint:
        Path (plus query) to hit.
    body:
        JSON-able document to POST, or ``None`` for GET.
    timeout:
        Socket timeout in seconds.

    Returns
    -------
    tuple
        ``(latency_seconds, status)`` — status is the HTTP code, or 0
        when the connection itself failed.
    """
    request = urllib.request.Request(base_url.rstrip("/") + endpoint)
    if body is not None:
        request.data = json.dumps(body).encode("utf-8")
        request.add_header("Content-Type", "application/json")
    started = time.monotonic()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            reply.read()
            status = reply.status
    except urllib.error.HTTPError as error:
        error.read()
        error.close()
        status = error.code
    except (urllib.error.URLError, OSError):
        status = 0
    return time.monotonic() - started, status


def run_loadgen(base_url: str, dataset: str = "ionosphere",
                duration_seconds: float = 10.0, qps: float = 50.0,
                batch_size: int = 1, generate_n: int = 32,
                random_state: int = 0, timeout: float = 10.0) -> dict:
    """Drive the endpoint mix at a target rate and measure latency.

    Parameters
    ----------
    base_url:
        Root URL of the running server.
    dataset:
        Twin name fed to :func:`repro.datasets.load_twin`; its records
        are replayed cyclically as the ingest stream.
    duration_seconds:
        Wall-clock run length.
    qps:
        Target request rate; pacing sleeps between sends to hold it.
    batch_size:
        Records per ``/ingest`` body (1 = single-record JSON shape).
    generate_n:
        ``n`` passed to ``/generate``.
    random_state:
        Seed for the dataset twin.
    timeout:
        Per-request socket timeout in seconds.

    Returns
    -------
    dict
        Benchmark report: per-endpoint ``n``/``p50_ms``/``p95_ms``/
        ``p99_ms``/``mean_ms``, plus ``achieved_qps``, ``n_requests``,
        ``n_failures`` and the run parameters.

    Raises
    ------
    RuntimeError
        If not a single request succeeded (server unreachable).
    """
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    if duration_seconds <= 0:
        raise ValueError(
            f"duration_seconds must be positive, got {duration_seconds}"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    stream = load_twin(dataset, random_state=random_state).data
    interval = 1.0 / float(qps)
    latencies: dict = {}
    n_failures = 0
    cursor = 0
    tick = 0
    started = time.monotonic()
    deadline = started + float(duration_seconds)
    next_send = started
    while True:
        now = time.monotonic()
        if now >= deadline:
            break
        if now < next_send:
            time.sleep(min(next_send - now, deadline - now))
            continue
        next_send += interval
        tick += 1
        if tick % HEALTHZ_EVERY == 0:
            endpoint, body = "/healthz", None
        elif tick % MODEL_EVERY == 0:
            endpoint, body = "/model", None
        elif tick % GENERATE_EVERY == 0:
            endpoint, body = f"/generate?n={int(generate_n)}", None
        else:
            rows = [
                stream[(cursor + offset) % stream.shape[0]].tolist()
                for offset in range(batch_size)
            ]
            cursor += batch_size
            body = {"records": rows} if batch_size > 1 \
                else {"record": rows[0]}
            endpoint = "/ingest"
        latency, status = _request(
            base_url, endpoint, body=body, timeout=timeout
        )
        bucket = endpoint.split("?")[0]
        # /generate 409s until enough records arrive for a first group;
        # that is expected warm-up, not a failure of the server.
        if status == 200 or (bucket == "/generate" and status == 409):
            latencies.setdefault(bucket, []).append(latency)
        else:
            n_failures += 1
    elapsed = time.monotonic() - started
    n_ok = sum(len(values) for values in latencies.values())
    if not n_ok:
        raise RuntimeError(
            f"no request against {base_url} succeeded "
            f"({n_failures} failures); is the server running?"
        )
    return {
        "dataset": dataset,
        "duration_seconds": round(elapsed, 3),
        "target_qps": float(qps),
        "achieved_qps": round((n_ok + n_failures) / elapsed, 2),
        "batch_size": int(batch_size),
        "n_requests": n_ok + n_failures,
        "n_failures": n_failures,
        "endpoints": {
            endpoint: _summarize(values)
            for endpoint, values in sorted(latencies.items())
        },
    }


def _summarize(latencies) -> dict:
    """Latency percentiles for one endpoint, in milliseconds.

    Parameters
    ----------
    latencies:
        Per-request latencies in seconds.

    Returns
    -------
    dict
        ``n``, ``p50_ms``, ``p95_ms``, ``p99_ms``, ``mean_ms``.
    """
    values = np.asarray(latencies, dtype=float) * 1000.0
    p50, p95, p99 = np.percentile(values, [50.0, 95.0, 99.0])
    return {
        "n": int(values.shape[0]),
        "p50_ms": round(float(p50), 3),
        "p95_ms": round(float(p95), 3),
        "p99_ms": round(float(p99), 3),
        "mean_ms": round(float(values.mean()), 3),
    }


def write_report(report: dict, path=DEFAULT_REPORT_PATH) -> Path:
    """Atomically publish the benchmark report document.

    Parameters
    ----------
    report:
        Document from :func:`run_loadgen`.
    path:
        Destination file.

    Returns
    -------
    pathlib.Path
        The written path.
    """
    final = Path(path)
    if final.parent != Path("."):
        final.parent.mkdir(parents=True, exist_ok=True)
    temporary = final.with_suffix(final.suffix + ".tmp")
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, final)
    return final

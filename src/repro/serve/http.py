"""The HTTP front of ``repro serve`` — stdlib only, statistics out.

A :class:`AnonymizationHTTPServer` (a ``ThreadingHTTPServer``) wraps a
:class:`~repro.serve.service.ShardedCondensationService` and exposes
the paper's server role over five endpoints:

================  =======================================================
``POST /ingest``  Condense one record or a batch (JSON body).
``GET /generate``  Draw ``?n=`` synthetic records from group statistics.
``GET /model``    Statistics-only condensed-model document.
``GET /healthz``  Liveness/readiness scalars.
``GET /metrics``  Prometheus text exposition of the ``serve.*`` metrics.
================  =======================================================

Raw records cross the wire exactly once — inward, in an ``/ingest``
body — and exist in the process only until the service condenses them;
every response body is built from group statistics or synthetic draws.
Request handling degrades gracefully: malformed JSON, wrong
dimensionality, non-finite values, and oversized bodies produce
structured ``{"error": ...}`` documents with 400/413 status codes (and
a ``serve.rejected`` counter increment) instead of tracebacks taking
the worker thread down.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

import numpy as np

from repro import telemetry
from repro.telemetry.exporters import render_prometheus

#: Reject /ingest bodies larger than this many bytes (HTTP 413).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Cap on ``/generate?n=`` so one request cannot wedge a worker.
MAX_GENERATE_RECORDS = 1_000_000


class RequestError(Exception):
    """A client error that maps to one structured HTTP error document.

    Parameters
    ----------
    status:
        HTTP status code (4xx).
    code:
        Stable machine-readable error identifier.
    message:
        Human-readable explanation (never a traceback).
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)


def ingest_records(service, records) -> dict:
    """Condense client-submitted records into the service fleet.

    The single point where raw ingested records touch the service from
    the HTTP layer; the return value is the service's scalar ingest
    summary, safe to serialize back to the client.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.ShardedCondensationService`.
    records:
        Parsed record array, shape ``(m, d)`` or ``(d,)``.

    Returns
    -------
    dict
        Scalar summary (``accepted``/``buffered``/``bootstrapped``/
        ``position``).
    """
    return service.ingest(records)


class AnonymizationHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one condensation service.

    Parameters
    ----------
    address:
        ``(host, port)`` pair; port 0 binds an ephemeral port
        (read the result back from :attr:`server_port`).
    service:
        The :class:`~repro.serve.service.ShardedCondensationService`
        answering the endpoints.
    max_body_bytes:
        Largest accepted ``/ingest`` body; larger requests get 413.

    Examples
    --------
    >>> import threading
    >>> from repro.serve import (
    ...     AnonymizationHTTPServer, ShardedCondensationService)
    >>> service = ShardedCondensationService(
    ...     n_shards=2, k=3, bootstrap_size=12, random_state=0)
    >>> server = AnonymizationHTTPServer(("127.0.0.1", 0), service)
    >>> thread = threading.Thread(target=server.serve_forever)
    >>> thread.start()
    >>> server.server_port > 0
    True
    >>> server.shutdown(); thread.join(); server.server_close()
    >>> service.close()
    """

    daemon_threads = True

    def __init__(self, address, service,
                 max_body_bytes: int = DEFAULT_MAX_BODY_BYTES):
        self.service = service
        self.max_body_bytes = int(max_body_bytes)
        super().__init__(address, AnonymizationRequestHandler)


class AnonymizationRequestHandler(BaseHTTPRequestHandler):
    """Request handler implementing the five serve endpoints.

    Every response is JSON except ``/metrics`` (Prometheus text).
    Client errors become structured ``{"error": {"code", "message",
    "status"}}`` documents; unexpected server-side failures become a
    structured 500 with the exception class name only — tracebacks
    never cross the wire.
    """

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:
        """Dispatch ``GET`` endpoints."""
        self._dispatch("GET")

    def do_POST(self) -> None:
        """Dispatch ``POST`` endpoints."""
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        """Route one request, converting failures to error documents."""
        split = urlsplit(self.path)
        endpoint = split.path.rstrip("/") or "/"
        with telemetry.span("serve.http") as request_span:
            request_span.set_attribute("endpoint", endpoint)
            request_span.set_attribute("method", method)
            try:
                handler = self._resolve(method, endpoint)
                handler(parse_qs(split.query))
                status = "ok"
            except RequestError as error:
                telemetry.counter_inc(
                    "serve.rejected", labels={"code": error.code}
                )
                self._send_json(error.status, {"error": {
                    "status": error.status,
                    "code": error.code,
                    "message": error.message,
                }})
                status = "rejected"
            except (BrokenPipeError, ConnectionResetError):
                # The client hung up mid-response; nothing to send.
                status = "disconnected"
            except Exception as error:  # noqa: BLE001 - worker must survive
                telemetry.counter_inc("serve.errors")
                try:
                    self._send_json(500, {"error": {
                        "status": 500,
                        "code": "internal",
                        "message": type(error).__name__,
                    }})
                except OSError:
                    pass
                status = "error"
            request_span.set_attribute("status", status)

    def _resolve(self, method: str, endpoint: str):
        """Find the endpoint handler or raise 404/405."""
        routes = {
            "/ingest": ("POST", self._handle_ingest),
            "/generate": ("GET", self._handle_generate),
            "/model": ("GET", self._handle_model),
            "/healthz": ("GET", self._handle_healthz),
            "/metrics": ("GET", self._handle_metrics),
        }
        if endpoint not in routes:
            raise RequestError(
                404, "not-found", f"unknown endpoint {endpoint}"
            )
        expected, handler = routes[endpoint]
        if method != expected:
            raise RequestError(
                405, "method-not-allowed",
                f"{endpoint} requires {expected}",
            )
        return handler

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _handle_ingest(self, query) -> None:
        """``POST /ingest`` — condense the body's record payload."""
        payload = self._read_json_body()
        parsed = _parse_record_payload(payload)
        try:
            result = ingest_records(self.server.service, parsed)
        except ValueError as error:
            raise RequestError(400, "bad-records", str(error)) from None
        except RuntimeError as error:
            raise RequestError(409, "closed", str(error)) from None
        self._send_json(200, result)

    def _handle_generate(self, query) -> None:
        """``GET /generate?n=`` — draw synthetic anonymized records."""
        raw_n = query.get("n", ["100"])[-1]
        try:
            n_records = int(raw_n)
        except ValueError:
            raise RequestError(
                400, "bad-n", f"n must be an integer, got {raw_n!r}"
            ) from None
        if not 1 <= n_records <= MAX_GENERATE_RECORDS:
            raise RequestError(
                400, "bad-n",
                f"n must be in [1, {MAX_GENERATE_RECORDS}], "
                f"got {n_records}",
            )
        from repro.serve.service import NotReadyError

        try:
            drawn = self.server.service.generate(n_records)
        except NotReadyError as error:
            raise RequestError(409, "not-ready", str(error)) from None
        except RuntimeError as error:
            raise RequestError(409, "closed", str(error)) from None
        self._send_json(200, {
            "n": int(drawn.shape[0]),
            "n_features": int(drawn.shape[1]),
            "records": drawn.tolist(),
        })

    def _handle_model(self, query) -> None:
        """``GET /model`` — the statistics-only model document."""
        self._send_json(200, self.server.service.model())

    def _handle_healthz(self, query) -> None:
        """``GET /healthz`` — liveness and readiness scalars."""
        health = self.server.service.status()
        status = 200 if health["status"] == "ok" else 503
        self._send_json(status, health)

    def _handle_metrics(self, query) -> None:
        """``GET /metrics`` — Prometheus text exposition."""
        registry = getattr(telemetry.get_pipeline(), "registry", None)
        if registry is None:
            text = "# telemetry disabled\n"
        else:
            text = render_prometheus(registry)
        self._send_bytes(
            200, text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _read_json_body(self):
        """Read and parse the request body, or raise 400/411/413."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise RequestError(
                411, "length-required",
                "requests must carry Content-Length",
            )
        try:
            length = int(length_header)
        except ValueError:
            raise RequestError(
                400, "bad-length",
                f"invalid Content-Length {length_header!r}",
            ) from None
        limit = self.server.max_body_bytes
        if length > limit:
            raise RequestError(
                413, "body-too-large",
                f"body of {length} bytes exceeds the {limit}-byte limit",
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise RequestError(
                400, "bad-json", f"malformed JSON body: {error}"
            ) from None

    def _send_json(self, status: int, document) -> None:
        """Send one sorted-key JSON response document."""
        self._send_bytes(
            status,
            json.dumps(document, sort_keys=True).encode("utf-8"),
            "application/json",
        )

    def _send_bytes(self, status: int, body: bytes,
                    content_type: str) -> None:
        """Send a complete response with explicit Content-Length."""
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        telemetry.counter_inc(
            "serve.responses", labels={"status": str(status)}
        )

    def log_message(self, format, *args) -> None:  # noqa: A002
        """Silence the default stderr access log (telemetry covers it)."""


def _parse_record_payload(payload):
    """Extract the record array from an ``/ingest`` JSON document.

    Accepts ``{"records": [[...], ...]}``, ``{"record": [...]}``, or a
    bare JSON array.

    Parameters
    ----------
    payload:
        Decoded JSON body.

    Returns
    -------
    numpy.ndarray

    Raises
    ------
    RequestError
        With status 400 when the document has none of the accepted
        shapes or the values are not numeric.
    """
    if isinstance(payload, dict):
        if "records" in payload:
            candidate = payload["records"]
        elif "record" in payload:
            candidate = payload["record"]
        else:
            raise RequestError(
                400, "bad-payload",
                'body must carry "records" (batch) or "record" (single)',
            )
    elif isinstance(payload, list):
        candidate = payload
    else:
        raise RequestError(
            400, "bad-payload",
            f"body must be an object or array, got "
            f"{type(payload).__name__}",
        )
    try:
        parsed = np.asarray(candidate, dtype=float)
    except (TypeError, ValueError) as error:
        raise RequestError(
            400, "bad-records", f"records are not numeric: {error}"
        ) from None
    if parsed.ndim not in (1, 2) or not parsed.size:
        raise RequestError(
            400, "bad-records",
            f"records must be a vector or non-empty matrix, got shape "
            f"{parsed.shape}",
        )
    return parsed


def install_signal_handlers(server, service) -> None:
    """Make SIGTERM/SIGINT drain the server and close every shard.

    The handler asks the server loop to stop from a helper thread
    (``shutdown()`` must not run on the thread executing
    ``serve_forever``), then checkpoints and closes the service — so a
    terminated process leaves the same durable state as a clean
    shutdown, and the next :meth:`ShardedCondensationService.open`
    recovers it exactly.

    Parameters
    ----------
    server:
        The running :class:`AnonymizationHTTPServer`.
    service:
        Its :class:`~repro.serve.service.ShardedCondensationService`.
    """
    def handle(signum, frame):
        threading.Thread(
            target=_drain, args=(server, service), daemon=True
        ).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, handle)


def _drain(server, service) -> None:
    """Stop accepting requests, then close the service durably."""
    server.shutdown()
    service.close()

"""Anonymization as a service over durable sharded condensers.

The serving subsystem puts live traffic on the reproduction: a
dependency-free HTTP server (stdlib ``http.server``) fronts a fleet of
durable :class:`~repro.core.condenser.DynamicCondenser` shards, routes
each ingested record along frozen principal-axis bisection cuts, and
answers every read endpoint from group statistics only — the paper's
privacy contract as a deployment boundary.  See ``docs/serving.md``.
"""

from repro.serve.http import (
    AnonymizationHTTPServer,
    AnonymizationRequestHandler,
    RequestError,
    install_signal_handlers,
)
from repro.serve.loadgen import run_loadgen, write_report
from repro.serve.router import PrincipalAxisRouter
from repro.serve.service import (
    NotReadyError,
    ShardedCondensationService,
)

__all__ = [
    "AnonymizationHTTPServer",
    "AnonymizationRequestHandler",
    "NotReadyError",
    "PrincipalAxisRouter",
    "RequestError",
    "ShardedCondensationService",
    "install_signal_handlers",
    "run_loadgen",
    "write_report",
]

"""The anonymization service core: a fleet of durable condenser shards.

:class:`ShardedCondensationService` is the HTTP-free heart of
``repro serve``: it owns ``n_shards`` independent
:class:`~repro.core.condenser.DynamicCondenser` instances — each with
its own WAL/checkpoint directory when durable — plus a
:class:`~repro.serve.router.PrincipalAxisRouter` that sends every
ingested record to the shard owning its region of space.  The paper's
privacy contract shapes the API surface: raw records flow *in* through
:meth:`ingest` and are gone once condensed; everything flowing *out*
(:meth:`model`, :meth:`generate`, :meth:`status`) is derived from the
``(Fs, Sc, n)`` group statistics alone.

Lifecycle
---------
A cold service buffers its first ``bootstrap_size`` records (the
transient trusted-side input buffer — the one place raw records live,
exactly as in the paper's static-database bootstrap), then fits the
router on them, flushes them through it into the shards, and persists
the router's hyperplane aggregates as ``router.json`` next to the
shard directories.  From then on every record is routed and condensed
synchronously.  :meth:`close` checkpoints and closes every shard, and
:meth:`open` on the same root recovers each shard from its
WAL/checkpoints — so a restart *is* failover: the recovered
:meth:`model` is bit-identical to the pre-shutdown statistics.

Thread safety
-------------
The service uses a two-level lock hierarchy, checked statically by the
THR rule family (``docs/static_analysis.md``):

* one service ``RLock`` guards the shared scalars and the routing
  state (``_router``, ``_pending``, ``_closed``, ``_n_features``) —
  every public method takes it first, briefly;
* one ``RLock`` *per shard* guards that shard's condenser, so slow
  per-shard work (durable ``partial_fit``, checkpoint snapshots) never
  blocks routing or traffic bound for the other shards.

The acquisition order is always service lock → shard lock (and shard
locks are never nested), so the hierarchy is deadlock-free.  Ingest
validates and routes under the service lock, then applies each shard's
slice under that shard's lock only; checkpointing holds no service
lock while snapshotting, which is the regression behind
``tests/serve/test_concurrency.py``.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import ExitStack
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.core.condenser import DynamicCondenser
from repro.core.generation import generate_anonymized_data
from repro.core.statistics import CondensedModel
from repro.linalg.rng import (
    rng_from_seed_sequence,
    spawn_seed_sequences,
)
from repro.serve.router import PrincipalAxisRouter

#: File holding the fitted router's hyperplane aggregates.
ROUTER_FILE = "router.json"

#: Shard durability sub-directory name pattern.
SHARD_DIR_FORMAT = "shard-{:03d}"


class NotReadyError(RuntimeError):
    """The service cannot answer yet (no condensed groups exist)."""


def shard_directory(root, shard_id: int) -> Path:
    """Durability directory of one shard.

    Parameters
    ----------
    root:
        Service root directory.
    shard_id:
        Shard index.

    Returns
    -------
    pathlib.Path
    """
    return Path(root) / SHARD_DIR_FORMAT.format(shard_id)


class ShardedCondensationService:
    """Anonymization-as-a-service over durable sharded condensers.

    Parameters
    ----------
    n_shards:
        Number of condenser shards.
    k:
        Indistinguishability level maintained within every shard.
    root:
        Durability root directory; each shard journals to its own
        ``shard-NNN/`` WAL/checkpoint sub-directory and the fitted
        router is persisted as ``router.json``.  ``None`` runs fully
        in memory (tests, throwaway demos).
    strategy, sampler:
        As for :class:`~repro.core.condenser.DynamicCondenser`.
    bootstrap_size:
        Records buffered before the router is fitted; defaults to
        ``max(2 * k * n_shards, 8 * n_shards)`` so every shard can
        found a group immediately after the flush.
    checkpoint_every, fsync_every:
        Per-shard durability knobs (see ``docs/durability.md``).
    batch_size:
        Per-shard ingest block size (see
        :class:`~repro.core.condenser.DynamicCondenser`).  The default
        ``1`` keeps the sequential record-at-a-time path; larger
        values vectorize each shard's slice of every ingest request
        and journal one ``batch`` WAL entry per block.
    random_state:
        Integer seed; per-shard RNG streams are spawned from it so
        shard behavior is independent of traffic interleaving across
        the other shards.
    worker_pool:
        Optional :class:`repro.parallel.WorkerPool` the service holds
        for the process's lifetime — keeping the warm pool alive next
        to the serving plane lets co-located batch ``condense_sharded``
        jobs (re-condensations, offline re-anonymization) skip worker
        spawn entirely.  The service owns the pool: :meth:`close`
        closes it.  ``None`` (default) holds no pool.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.serve import ShardedCondensationService
    >>> rng = np.random.default_rng(0)
    >>> service = ShardedCondensationService(
    ...     n_shards=2, k=5, bootstrap_size=20, random_state=0)
    >>> result = service.ingest(rng.normal(size=(60, 3)))
    >>> result["accepted"]
    60
    >>> service.generate(8).shape
    (8, 3)
    """

    def __init__(self, n_shards: int, k: int, root=None,
                 strategy="random", sampler="uniform",
                 bootstrap_size: int | None = None,
                 checkpoint_every: int = 256, fsync_every: int = 1,
                 batch_size: int = 1, random_state: int = 0,
                 worker_pool=None):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.n_shards = int(n_shards)
        self.k = int(k)
        self.root = None if root is None else Path(root)
        self.strategy = strategy
        self.sampler = sampler
        if bootstrap_size is None:
            bootstrap_size = max(2 * self.k * self.n_shards,
                                 8 * self.n_shards)
        if bootstrap_size < self.n_shards:
            raise ValueError(
                f"bootstrap_size must be >= n_shards ({self.n_shards}), "
                f"got {bootstrap_size}"
            )
        self.bootstrap_size = int(bootstrap_size)
        self.checkpoint_every = int(checkpoint_every)
        self.fsync_every = int(fsync_every)
        self.batch_size = int(batch_size)
        self.random_state = random_state
        self.worker_pool = worker_pool
        self._lock = threading.RLock()
        self._shard_locks = [
            threading.RLock() for _ in range(self.n_shards)
        ]
        self._router = PrincipalAxisRouter(self.n_shards)
        self._pending: list = []
        self._closed = False
        self._n_features: int | None = None
        self.recovered_shards = 0
        self._sequences = spawn_seed_sequences(random_state, self.n_shards)
        with telemetry.span("serve.open") as open_span:
            self._shards = [
                self._open_shard(shard_id)
                for shard_id in range(self.n_shards)
            ]
            open_span.set_attribute("recovered", self.recovered_shards)
        telemetry.gauge_set("serve.recovered_shards",
                            self.recovered_shards)
        self._load_router()

    # ------------------------------------------------------------------
    # Construction / recovery
    # ------------------------------------------------------------------

    def _open_shard(self, shard_id: int) -> DynamicCondenser:
        """Recover one shard from its durable state, or cold-start it.

        Recovery must be attempted *before* any fresh condenser binds
        the shard directory: a cold ``fit()`` journals a new empty
        bootstrap entry, which would bury the durable frontier.
        """
        from repro.durability import RecoveryError

        wal_dir = (
            None if self.root is None
            else shard_directory(self.root, shard_id)
        )
        if wal_dir is not None and wal_dir.is_dir() \
                and any(wal_dir.iterdir()):
            try:
                recovered = DynamicCondenser.recover(
                    wal_dir, strategy=self.strategy,
                    sampler=self.sampler,
                    checkpoint_every=self.checkpoint_every,
                    fsync_every=self.fsync_every,
                    batch_size=self.batch_size,
                )
            except RecoveryError:
                # The directory holds nothing reconstructible (e.g. a
                # crash before the first entry): start the shard cold.
                pass
            else:
                self.recovered_shards += 1
                return recovered
        shard = DynamicCondenser(
            self.k, strategy=self.strategy, sampler=self.sampler,
            random_state=rng_from_seed_sequence(
                self._sequences[shard_id]
            ),
            wal_dir=wal_dir, checkpoint_every=self.checkpoint_every,
            fsync_every=self.fsync_every, batch_size=self.batch_size,
        )
        shard.fit()
        return shard

    @classmethod
    def open(cls, root, n_shards: int, k: int, **kwargs
             ) -> "ShardedCondensationService":
        """Start a durable service, recovering whatever ``root`` holds.

        Every ``shard-NNN/`` directory with recoverable WAL/checkpoint
        state is rebuilt through the PR-5/6 durability path
        (:meth:`DynamicCondenser.recover`), so a restart after a crash
        or a SIGTERM resumes from the durable frontier; shards without
        recoverable state start cold.  A persisted ``router.json``
        restores the routing tree, skipping the bootstrap phase.

        Parameters
        ----------
        root:
            Service root directory (created if missing).
        n_shards:
            Shard count; must match the directory's layout when
            recovering (extra on-disk shards raise).
        k:
            Indistinguishability level.
        **kwargs:
            Remaining constructor arguments.

        Returns
        -------
        ShardedCondensationService
            A service whose :attr:`recovered_shards` counts how many
            shards were rebuilt from disk.

        Raises
        ------
        ValueError
            If ``root`` is ``None`` or holds more shard directories
            than ``n_shards``.
        """
        if root is None:
            raise ValueError("open() requires a durability root")
        root = Path(root)
        existing = sorted(root.glob("shard-*"))
        if len(existing) > n_shards:
            raise ValueError(
                f"{root} holds {len(existing)} shard directories but "
                f"n_shards={n_shards}; refusing to orphan durable state"
            )
        return cls(n_shards, k, root=root, **kwargs)

    def _router_path(self) -> Path | None:
        """Path of the persisted router document, if durable."""
        return None if self.root is None else self.root / ROUTER_FILE

    def _load_router(self) -> None:
        """Restore the routing tree persisted by a previous process."""
        path = self._router_path()
        if path is None or not path.is_file():
            return
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
        self._router = PrincipalAxisRouter.from_state(state)
        self._n_features = self._router.n_features

    def _persist_router(self) -> None:
        """Atomically publish the fitted router next to the shards."""
        path = self._router_path()
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        document = json.dumps(self._router.to_state(), sort_keys=True)
        temporary = path.with_suffix(".json.tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(document)
            handle.flush()
            # repro-lint: disable-next=THR-003 -- one-shot router publication at bootstrap; durable before any traffic is routed
            os.fsync(handle.fileno())
        os.replace(temporary, path)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def ingest(self, records: np.ndarray) -> dict:
        """Condense one record or a batch into the shard fleet.

        Until ``bootstrap_size`` records have arrived the service
        buffers them (transient, never durable); the batch that crosses
        the threshold fits the router and flushes the whole buffer
        through it.  Afterwards every record goes straight to its
        shard's durable ingest path.

        Locking: validation and routing run under the service lock
        only; the condensation work is then applied shard by shard
        under each shard's own lock, so a slow shard (or a concurrent
        checkpoint snapshot) delays only the records bound for it.
        When :meth:`close` wins the race against an in-flight batch,
        the unapplied remainder raises ``RuntimeError`` — the
        at-least-once re-feed contract covers the replay, exactly as
        after a crash.

        Parameters
        ----------
        records:
            One record (shape ``(d,)``) or a batch (shape ``(m, d)``).

        Returns
        -------
        dict
            Scalar summary: ``accepted`` (records taken), ``buffered``
            (records still awaiting bootstrap), ``bootstrapped``
            (router fitted), and ``position`` (total condensed stream
            operations across shards — the durable frontier).

        Raises
        ------
        ValueError
            On wrong dimensionality or non-finite values.
        RuntimeError
            If the service is closed.
        """
        with self._lock, telemetry.span("serve.ingest") as ingest_span:
            self._require_open()
            records = self._validated(records)
            accepted = int(records.shape[0])
            ingest_span.set_attribute("n_records", accepted)
            if self._router.fitted:
                batch = records
            else:
                batch = self._bootstrap_ingest(records)
            shard_ids = (
                None if batch is None else self._router.route(batch)
            )
            buffered = len(self._pending)
            bootstrapped = self._router.fitted
        if batch is not None:
            self._apply_routed(batch, shard_ids)
        telemetry.counter_inc("serve.ingested", accepted)
        telemetry.gauge_set("serve.position", self.position)
        telemetry.gauge_set("serve.groups", self.n_groups)
        return {
            "accepted": accepted,
            "buffered": buffered,
            "bootstrapped": bootstrapped,
            "position": self.position,
        }

    def _bootstrap_ingest(self, records: np.ndarray):
        """Buffer warm-up records; fit the router once the threshold hits.

        Returns the flushed bootstrap sample when this batch crossed
        the threshold (the caller routes and applies it), else ``None``
        while the buffer is still filling.
        """
        for record in records:
            # The bootstrap buffer is the documented trusted-side input
            # feed: records wait here only until the routing tree can be
            # fitted, then flush into the condensers and are dropped.
            # repro-lint: disable-next=PRIV-001 -- transient bootstrap buffer, flushed and cleared below
            self._pending.append(np.array(record, dtype=float))
        if len(self._pending) < self.bootstrap_size:
            return None
        sample = np.vstack(self._pending)
        self._pending.clear()
        self._router.fit(sample)
        self._persist_router()
        telemetry.counter_inc("serve.bootstraps")
        return sample

    def _apply_routed(self, records: np.ndarray, shard_ids) -> None:
        """Condense each shard's slice of a routed batch, per shard lock.

        Runs *without* the service lock: only the target shard's lock
        is held while its slice is condensed (and, when durable,
        journaled), so ingest for one shard never stalls behind another
        shard's I/O or a checkpoint snapshot.
        """
        for shard_id in range(self.n_shards):
            member = shard_ids == shard_id
            if not member.any():
                continue
            with self._shard_locks[shard_id]:
                shard = self._shards[shard_id]
                if shard.closed:
                    raise RuntimeError("service is closed")
                shard.partial_fit(records[member])

    def generate(self, n_records: int) -> np.ndarray:
        """Draw anonymized records from the fleet's group statistics.

        Records are allocated to groups proportionally to group counts
        (largest-remainder rounding), so the synthetic sample follows
        the condensed density across all shards.

        Parameters
        ----------
        n_records:
            Number of synthetic records to draw.

        Returns
        -------
        numpy.ndarray, shape ``(n_records, d)``

        Raises
        ------
        NotReadyError
            If no condensed groups exist yet.
        ValueError
            If ``n_records`` is not positive.
        """
        if n_records < 1:
            raise ValueError(
                f"n_records must be >= 1, got {n_records}"
            )
        with self._lock, telemetry.span("serve.generate") as draw_span:
            self._require_open()
            # Generation needs one consistent cross-shard model, so it
            # is the only path that holds every shard lock at once —
            # always acquired after the service lock, in shard order.
            with ExitStack() as stack:
                for shard_lock in self._shard_locks:
                    stack.enter_context(shard_lock)
                model = self._combined_model()
                sizes = _proportional_sizes(
                    model.group_sizes, int(n_records)
                )
                # Generation draws ride shard 0's RNG stream;
                # journaling its post-draw position keeps recovered
                # draws exact even after a crash without a clean close.
                generated = generate_anonymized_data(
                    model, sampler=self.sampler,
                    random_state=self._shards[0]._rng, sizes=sizes,
                )
                self._shards[0].journal_rng()
            draw_span.set_attribute("n_records", int(n_records))
            telemetry.counter_inc("serve.generated", int(n_records))
            return generated

    def model(self) -> dict:
        """Statistics-only snapshot of every shard's condensed model.

        Returns
        -------
        dict
            ``k``, ``n_shards``, ``bootstrapped``, ``position``,
            ``n_groups``, ``total_count``, and per-shard documents
            (each the shard's
            :meth:`~repro.core.statistics.CondensedModel.to_dict`
            groups plus its stream position).  Deterministically
            ordered, so two services with identical durable state
            render byte-identical JSON.  Each shard document is an
            internally consistent snapshot (taken under that shard's
            lock); under concurrent ingest the documents may reflect
            slightly different stream moments across shards.
        """
        with self._lock:
            bootstrapped = self._router.fitted
        shards = []
        for shard_id in range(self.n_shards):
            with self._shard_locks[shard_id]:
                shard = self._shards[shard_id]
                if shard.n_groups:
                    groups = [
                        group.to_dict()
                        for group in shard.model_.groups
                    ]
                else:
                    # Warming up: fewer than k records routed here yet.
                    groups = []
                shards.append({
                    "shard": shard_id,
                    "position": shard.position,
                    "n_groups": len(groups),
                    "total_count": sum(
                        entry["count"] for entry in groups
                    ),
                    "groups": groups,
                })
        return {
            "k": self.k,
            "n_shards": self.n_shards,
            "bootstrapped": bootstrapped,
            "position": sum(entry["position"] for entry in shards),
            "n_groups": sum(entry["n_groups"] for entry in shards),
            "total_count": sum(
                entry["total_count"] for entry in shards
            ),
            "shards": shards,
        }

    def status(self) -> dict:
        """Liveness / readiness summary for ``/healthz``.

        Returns
        -------
        dict
            Scalar health fields only.
        """
        with self._lock:
            return {
                "status": "closed" if self._closed else "ok",
                "n_shards": self.n_shards,
                "k": self.k,
                "bootstrapped": self._router.fitted,
                "buffered": len(self._pending),
                "position": self.position,
                "n_groups": self.n_groups,
                "recovered_shards": self.recovered_shards,
                "pool_workers": (
                    self.worker_pool.alive_count()
                    if self.worker_pool is not None else 0
                ),
            }

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def position(self) -> int:
        """Total completed stream operations across all shards.

        Returns
        -------
        int
        """
        return sum(shard.position for shard in self._shards)

    @property
    def n_groups(self) -> int:
        """Total maintained groups across all shards.

        Returns
        -------
        int
        """
        return sum(shard.n_groups for shard in self._shards)

    def _combined_model(self) -> CondensedModel:
        """One model over every shard's groups (generation input)."""
        groups = []
        for shard in self._shards:
            if shard.n_groups:
                groups.extend(shard.model_.groups)
        if not groups:
            raise NotReadyError(
                "no condensed groups yet; ingest at least "
                f"bootstrap_size={self.bootstrap_size} records first"
            )
        return CondensedModel(groups=groups, k=self.k, metadata={})

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot every durable shard's full state now.

        Snapshot I/O runs under each shard's own lock, never the
        service lock, so routed ingest for the other shards proceeds
        while one shard writes its checkpoint.
        """
        with self._lock:
            self._require_open()
            if self.root is None:
                return
        with telemetry.span("serve.checkpoint"):
            for shard_id in range(self.n_shards):
                with self._shard_locks[shard_id]:
                    shard = self._shards[shard_id]
                    if shard.closed:
                        raise RuntimeError("service is closed")
                    # repro-lint: disable-next=THR-003 -- snapshot I/O blocks only this shard's lock by design
                    shard.checkpoint()

    def close(self) -> None:
        """Checkpoint (when durable) and close every shard.

        Idempotent; the service refuses traffic afterwards.  Records
        still buffered for bootstrap are dropped — raw records are
        never durable, and the response's ``buffered`` field told the
        client they were not yet condensed (the at-least-once re-feed
        contract of ``docs/durability.md``).  The closed flag flips
        under the service lock first, then each shard drains and
        closes under its own lock; an in-flight batch that loses the
        race to a now-closed shard raises and is re-fed by the client.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            durable = self.root is not None
            self._pending.clear()
        for shard_id in range(self.n_shards):
            with self._shard_locks[shard_id]:
                shard = self._shards[shard_id]
                if shard.closed:
                    continue
                if durable:
                    # repro-lint: disable-next=THR-003 -- final checkpoint blocks only this shard while draining
                    shard.checkpoint()
                shard.close()
        if self.worker_pool is not None:
            self.worker_pool.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run.

        Returns
        -------
        bool
        """
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    def _validated(self, records: np.ndarray) -> np.ndarray:
        """Normalize to a finite 2-D float batch or raise ``ValueError``."""
        records = np.asarray(records, dtype=float)
        if records.ndim == 1:
            records = records[None, :]
        if records.ndim != 2 or not records.shape[0]:
            raise ValueError(
                f"records must be 1-D or a non-empty 2-D batch, got "
                f"shape {records.shape}"
            )
        expected = self._n_features
        if expected is None:
            expected = self._router.n_features
        if expected is None and self._pending:
            expected = self._pending[0].shape[0]
        if expected is not None and records.shape[1] != expected:
            raise ValueError(
                f"records must have {expected} attributes, got "
                f"{records.shape[1]}"
            )
        if not np.isfinite(records).all():
            raise ValueError(
                "records must be finite (no NaN/inf values)"
            )
        if self._n_features is None:
            self._n_features = int(records.shape[1])
        return records

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self) -> str:
        return (
            f"ShardedCondensationService(n_shards={self.n_shards}, "
            f"k={self.k}, position={self.position})"
        )


def _proportional_sizes(group_sizes: np.ndarray, total: int) -> list:
    """Allocate ``total`` draws across groups by largest remainder.

    Parameters
    ----------
    group_sizes:
        Condensed group counts.
    total:
        Number of records to allocate.

    Returns
    -------
    list of int
        Per-group allocation summing exactly to ``total``.
    """
    weights = np.asarray(group_sizes, dtype=float)
    shares = weights * (total / weights.sum())
    floors = np.floor(shares).astype(int)
    remainder = total - int(floors.sum())
    if remainder:
        order = np.argsort(
            -(shares - floors), kind="stable"
        )[:remainder]
        floors[order] += 1
    return [int(size) for size in floors]

"""Record-to-shard routing by a fitted principal-axis bisection tree.

The sharded parallel engine partitions a *static* data set with
:func:`repro.parallel.principal_axis_shards`; a long-running service
must make the same decision one record at a time, for records it has
never seen.  The router here freezes the bisection into a decision
tree: fitting replays the exact partition loop of the batch
partitioner on a bootstrap sample (always splitting the currently
largest part at its principal-axis median), but records each cut as a
hyperplane — the part's mean, its leading eigenvector, and the median
projection threshold.  Routing a new record descends the tree by
projecting onto each cut's axis, so every record lands in the shard
whose bootstrap slab it falls into, preserving the locality argument
of ``docs/parallel.md`` for streamed traffic.

The fitted tree is pure aggregate state (means, axes, thresholds —
never records), so it may be persisted next to the shard checkpoints
and reloaded on restart; see :meth:`PrincipalAxisRouter.to_state`.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.symmetric import sorted_eigh, symmetrize


def _split_plane(records: np.ndarray):
    """Compute one bisection cut over ``records``.

    Parameters
    ----------
    records:
        Part members of shape ``(m, d)`` with ``m >= 2``.

    Returns
    -------
    tuple
        ``(center, axis, threshold, left_mask)`` — the part mean, the
        leading eigenvector, the boundary projection value (maximum of
        the lower half, matching the batch partitioner's stable-argsort
        median split), and the boolean membership mask of the lower
        half.
    """
    center = records.mean(axis=0)
    centered = records - center
    covariance = symmetrize(centered.T @ centered / records.shape[0])
    __, eigenvectors = sorted_eigh(covariance, clip=False)
    axis = eigenvectors[:, 0]
    projections = centered @ axis
    order = np.argsort(projections, kind="stable")
    half = (records.shape[0] + 1) // 2
    threshold = float(projections[order[half - 1]])
    left_mask = np.zeros(records.shape[0], dtype=bool)
    left_mask[order[:half]] = True
    return center, axis, threshold, left_mask


class PrincipalAxisRouter:
    """Route records to shards along frozen principal-axis cuts.

    Parameters
    ----------
    n_shards:
        Number of shards to route across.  The fitted tree holds at
        most ``n_shards`` leaves (fewer when the bootstrap sample is
        too small to split further); :meth:`route` returns shard ids in
        ``range(n_leaves)``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.serve import PrincipalAxisRouter
    >>> rng = np.random.default_rng(0)
    >>> sample = rng.normal(size=(64, 3))
    >>> router = PrincipalAxisRouter(4).fit(sample)
    >>> shard_ids = router.route(rng.normal(size=(10, 3)))
    >>> bool((shard_ids >= 0).all() and (shard_ids < 4).all())
    True
    """

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self._tree: dict | None = None
        self._n_features: int | None = None

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` (or :meth:`from_state`) has run.

        Returns
        -------
        bool
        """
        return self._tree is not None

    @property
    def n_features(self) -> int | None:
        """Dimensionality the router was fitted on (``None`` before).

        Returns
        -------
        int or None
        """
        return self._n_features

    def fit(self, data: np.ndarray) -> "PrincipalAxisRouter":
        """Freeze the bisection tree from a bootstrap sample.

        Mirrors :func:`repro.parallel.principal_axis_shards` exactly:
        the currently largest part is repeatedly bisected at its
        principal-axis median until ``n_shards`` parts exist, and leaf
        ids are assigned in the same part order — so routing the
        bootstrap sample itself reproduces the batch partition.

        Parameters
        ----------
        data:
            Bootstrap records of shape ``(m, d)``, ``m >= 1``.

        Returns
        -------
        PrincipalAxisRouter
            ``self``, fitted.

        Raises
        ------
        ValueError
            If ``data`` is not a non-empty 2-D array.
        """
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or not data.shape[0]:
            raise ValueError(
                f"bootstrap data must be non-empty 2-D, got shape "
                f"{data.shape}"
            )
        # Splits rewrite list entries in place, so the dict created
        # here stays the tree root no matter how many cuts land.
        root: dict = {}
        parts: list = [np.arange(data.shape[0], dtype=np.int64)]
        nodes: list = [root]
        while len(parts) < self.n_shards:
            sizes = [part.shape[0] for part in parts]
            largest = int(np.argmax(sizes))
            if sizes[largest] < 2:
                break
            part = parts.pop(largest)
            node = nodes.pop(largest)
            center, axis, threshold, left_mask = _split_plane(data[part])
            left: dict = {}
            right: dict = {}
            node.update({
                "center": center.tolist(),
                "axis": axis.tolist(),
                "threshold": threshold,
                "left": left,
                "right": right,
            })
            parts.insert(largest, part[~left_mask])
            parts.insert(largest, part[left_mask])
            nodes.insert(largest, right)
            nodes.insert(largest, left)
        for shard_id, node in enumerate(nodes):
            node["leaf"] = shard_id
        self._tree = root
        self._n_features = int(data.shape[1])
        return self

    def route(self, records: np.ndarray) -> np.ndarray:
        """Assign each record to its shard.

        Parameters
        ----------
        records:
            One record (shape ``(d,)``) or a batch (shape ``(m, d)``).

        Returns
        -------
        numpy.ndarray
            Int64 shard ids, one per record (shape ``(m,)``; a single
            record yields shape ``(1,)``).

        Raises
        ------
        RuntimeError
            If the router is not fitted.
        ValueError
            If the dimensionality does not match the fitted tree.
        """
        if self._tree is None:
            raise RuntimeError("router is not fitted; call fit() first")
        records = np.asarray(records, dtype=float)
        if records.ndim == 1:
            records = records[None, :]
        if records.ndim != 2 or records.shape[1] != self._n_features:
            raise ValueError(
                f"records must have shape (m, {self._n_features}), "
                f"got {records.shape}"
            )
        out = np.empty(records.shape[0], dtype=np.int64)
        self._route_mask(
            self._tree, records, np.arange(records.shape[0]), out
        )
        return out

    def _route_mask(self, node, records, indices, out) -> None:
        """Descend one subtree for the records selected by ``indices``."""
        if not indices.shape[0]:
            return
        if "leaf" in node:
            out[indices] = node["leaf"]
            return
        center = np.asarray(node["center"], dtype=float)
        axis = np.asarray(node["axis"], dtype=float)
        projections = (records[indices] - center) @ axis
        below = projections <= node["threshold"]
        self._route_mask(node["left"], records, indices[below], out)
        self._route_mask(node["right"], records, indices[~below], out)

    @property
    def n_leaves(self) -> int:
        """Number of leaves (reachable shard ids) in the fitted tree.

        Returns
        -------
        int

        Raises
        ------
        RuntimeError
            If the router is not fitted.
        """
        if self._tree is None:
            raise RuntimeError("router is not fitted; call fit() first")
        count = 0
        stack = [self._tree]
        while stack:
            node = stack.pop()
            if "leaf" in node:
                count += 1
            else:
                stack.extend((node["left"], node["right"]))
        return count

    def to_state(self) -> dict:
        """Serialize the fitted tree as a JSON-able aggregate document.

        The document holds only hyperplane aggregates (means, axes,
        thresholds) — never records — so persisting it next to shard
        checkpoints keeps the statistics-only invariant.

        Returns
        -------
        dict
            ``{"n_shards", "n_features", "tree"}``.

        Raises
        ------
        RuntimeError
            If the router is not fitted.
        """
        if self._tree is None:
            raise RuntimeError("router is not fitted; call fit() first")
        return {
            "n_shards": self.n_shards,
            "n_features": self._n_features,
            "tree": self._tree,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PrincipalAxisRouter":
        """Rebuild a fitted router from :meth:`to_state` output.

        Parameters
        ----------
        state:
            Document produced by :meth:`to_state`.

        Returns
        -------
        PrincipalAxisRouter

        Raises
        ------
        ValueError
            If the document is structurally invalid.
        """
        try:
            router = cls(int(state["n_shards"]))
            router._n_features = int(state["n_features"])
            tree = state["tree"]
        except (KeyError, TypeError) as error:
            raise ValueError(f"invalid router state: {error}") from None
        if not isinstance(tree, dict):
            raise ValueError("invalid router state: tree is not a dict")
        router._tree = tree
        return router

    def __repr__(self) -> str:
        status = "fitted" if self.fitted else "unfitted"
        return (
            f"PrincipalAxisRouter(n_shards={self.n_shards}, {status})"
        )

"""Persistence for condensed models.

The paper's trust model lets the server persist only aggregate
statistics.  A condensed model *is* that aggregate, so storing and
reloading it is the natural deployment boundary: condense on the
trusted side, ship the JSON, generate on the consumer side.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.statistics import CondensedModel

#: Format marker so future revisions can migrate old files.
FORMAT_VERSION = 1


def save_model(path, model: CondensedModel, include_metadata=False
               ) -> None:
    """Serialize a condensed model to JSON.

    Parameters
    ----------
    path:
        Destination file.
    model:
        The condensed model.
    include_metadata:
        Whether to persist ``model.metadata``.  Off by default: static
        condensation's metadata includes record-to-group memberships,
        which reference the *original* records and must never ship with
        a release.
    """
    payload = model.to_dict()
    if not include_metadata:
        payload["metadata"] = {}
    else:
        payload["metadata"] = _jsonable_metadata(payload["metadata"])
    payload["format_version"] = FORMAT_VERSION
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_model(path, validate: bool = True) -> CondensedModel:
    """Load a condensed model written by :func:`save_model`.

    Parameters
    ----------
    path:
        File to read.
    validate:
        Check the structural invariants of the loaded model (finite
        sums, positive counts, PSD covariances, ...) and raise on
        violations — on by default because model files cross trust
        boundaries.

    Returns
    -------
    CondensedModel
        The deserialized model.

    Raises
    ------
    ValueError
        If the file is structurally invalid or fails validation.
    """
    path = Path(path)
    with open(path) as handle:
        payload = json.load(handle)
    version = payload.pop("format_version", None)
    if version != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported model format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    model = CondensedModel.from_dict(payload)
    if validate:
        from repro.core.validation import validate_model

        problems = validate_model(model)
        if problems:
            raise ValueError(
                f"{path}: invalid condensed model: "
                + "; ".join(problems)
            )
    return model


def _jsonable_metadata(metadata: dict) -> dict:
    """Convert numpy-bearing metadata values to JSON-compatible ones."""
    converted = {}
    for key, value in metadata.items():
        if isinstance(value, np.ndarray):
            converted[key] = value.tolist()
        elif isinstance(value, list) and value and isinstance(
            value[0], np.ndarray
        ):
            converted[key] = [entry.tolist() for entry in value]
        elif isinstance(value, (np.integer, np.floating)):
            converted[key] = value.item()
        else:
            converted[key] = value
    return converted

"""Data and model I/O: CSV for records, JSON for condensed models.

Also home to the memory-mapped array exchange files
(:mod:`repro.io.mmapio`) that back :mod:`repro.parallel`'s zero-copy
worker hand-off where POSIX shared memory is unavailable.
"""

from repro.io.csv import (
    read_dataset,
    read_records,
    write_dataset,
    write_records,
)
from repro.io.mmapio import open_array_mmap, write_array_mmap
from repro.io.model_store import load_model, save_model

__all__ = [
    "read_dataset",
    "read_records",
    "write_dataset",
    "write_records",
    "load_model",
    "open_array_mmap",
    "save_model",
    "write_array_mmap",
]

"""Data and model I/O: CSV for records, JSON for condensed models."""

from repro.io.csv import (
    read_dataset,
    read_records,
    write_dataset,
    write_records,
)
from repro.io.model_store import load_model, save_model

__all__ = [
    "read_dataset",
    "read_records",
    "write_dataset",
    "write_records",
    "load_model",
    "save_model",
]

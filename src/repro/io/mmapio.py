"""Memory-mapped array exchange files for zero-copy worker hand-off.

:mod:`repro.parallel` ships shard payloads to worker processes through
``multiprocessing.shared_memory`` blocks.  Some environments cannot
provide POSIX shared memory (no ``/dev/shm``, restrictive sandboxes),
so the engine falls back to the next best zero-copy channel: an
ordinary file in the standard ``.npy`` layout, written once by the
coordinator and *memory-mapped read-only* by every worker.  Workers
then page the records straight from the OS file cache instead of
deserializing a pickled copy per task — the same property the shared
memory path provides, minus a little attach latency.

Files follow the repo's atomic-publication discipline (temp file →
``fsync`` → ``os.replace``), so a reader can never map a half-written
payload.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np


def write_array_mmap(path, array: np.ndarray) -> int:
    """Publish an array as an ``.npy`` file suitable for memory-mapping.

    Parameters
    ----------
    path:
        Destination file; written atomically (temp → fsync → replace).
    array:
        Array to publish; stored contiguous in ``.npy`` layout.

    Returns
    -------
    int
        Number of payload bytes written (``array.nbytes``).
    """
    path = Path(path)
    temp_path = path.with_name(path.name + ".tmp")
    with open(temp_path, "wb") as handle:
        np.save(handle, np.ascontiguousarray(array))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)
    return int(array.nbytes)


def open_array_mmap(path) -> np.ndarray:
    """Map a published array file read-only.

    Parameters
    ----------
    path:
        File written by :func:`write_array_mmap`.

    Returns
    -------
    numpy.ndarray
        Read-only memory-mapped view; bytes are paged in on demand and
        shared between every process mapping the same file.

    Raises
    ------
    FileNotFoundError
        If the file does not exist.
    ValueError
        If the file is not a valid ``.npy`` array.
    """
    return np.load(path, mmap_mode="r", allow_pickle=False)

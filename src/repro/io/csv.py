"""CSV import/export for record arrays and labelled data sets.

A release pipeline needs to get data in and out of the library without
pandas (not available in this environment): these helpers read and
write simple headered CSV with numeric attributes and an optional
target column, covering the Dataset container used across the library.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.datasets.base import Dataset


def write_records(path, data: np.ndarray, feature_names=None) -> None:
    """Write a record array as headered CSV.

    Parameters
    ----------
    path:
        Destination file path.
    data:
        Record array of shape ``(n, d)``.
    feature_names:
        Optional column names; defaults to ``attr_0..attr_{d-1}``.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if feature_names is None:
        feature_names = [f"attr_{column}" for column in
                         range(data.shape[1])]
    elif len(feature_names) != data.shape[1]:
        raise ValueError(
            f"need {data.shape[1]} feature names, got {len(feature_names)}"
        )
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(feature_names)
        writer.writerows(data.tolist())


def read_records(path):
    """Read a headered numeric CSV back into ``(data, feature_names)``.

    Parameters
    ----------
    path:
        File to read; must have a header row and numeric cells.

    Returns
    -------
    data : numpy.ndarray, shape (n, d)
        The numeric records.
    feature_names : list of str
        The header row.

    Raises
    ------
    ValueError
        If the file is empty, ragged, or contains non-numeric cells.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        rows = []
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(header)} "
                    f"columns, got {len(row)}"
                )
            try:
                rows.append([float(cell) for cell in row])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: non-numeric cell"
                ) from None
    if not rows:
        raise ValueError(f"{path} has a header but no data rows")
    return np.array(rows), header


def write_dataset(path, dataset: Dataset, target_column: str = "target"
                  ) -> None:
    """Write a labelled data set as CSV with a trailing target column.

    Parameters
    ----------
    path:
        Destination file.
    dataset:
        Data set to write.
    target_column:
        Header name for the target column.

    Raises
    ------
    ValueError
        If ``target_column`` collides with an attribute name.
    """
    if target_column in dataset.feature_names:
        raise ValueError(
            f"target column name {target_column!r} collides with an "
            "attribute name"
        )
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(dataset.feature_names) + [target_column])
        for record, target in zip(dataset.data, dataset.target):
            writer.writerow(list(record) + [target])


def read_dataset(path, name=None, task="classification",
                 target_column: str = "target") -> Dataset:
    """Read a labelled CSV (trailing target column) into a Dataset.

    Classification targets are parsed as-is (strings stay strings when
    non-numeric); regression targets must be numeric.

    Parameters
    ----------
    path:
        File to read.
    name:
        Data set name; defaults to the file stem.
    task:
        ``"classification"`` or ``"regression"``.
    target_column:
        Header name of the target column.

    Returns
    -------
    Dataset
        The parsed data set.

    Raises
    ------
    ValueError
        If the file is malformed or the target column is missing.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty") from None
        if header[-1] != target_column:
            raise ValueError(
                f"{path}: expected trailing target column "
                f"{target_column!r}, found {header[-1]!r}"
            )
        data_rows, target_values = [], []
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(header)} "
                    f"columns, got {len(row)}"
                )
            try:
                data_rows.append([float(cell) for cell in row[:-1]])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: non-numeric attribute cell"
                ) from None
            target_values.append(row[-1])
    if not data_rows:
        raise ValueError(f"{path} has a header but no data rows")
    if task == "regression":
        try:
            target = np.array([float(value) for value in target_values])
        except ValueError:
            raise ValueError(
                f"{path}: regression targets must be numeric"
            ) from None
    else:
        # Prefer numeric labels when every value parses as a number.
        try:
            target = np.array(
                [int(float(value)) for value in target_values]
            )
        except ValueError:
            target = np.array(target_values)
    return Dataset(
        name=name or path.stem,
        data=np.array(data_rows),
        target=target,
        task=task,
        feature_names=header[:-1],
    )

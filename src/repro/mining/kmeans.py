"""Lloyd's k-means with k-means++ initialization.

Serves two roles: a downstream mining algorithm that demonstrates the
paper's "any algorithm runs on anonymized data" claim (clustering quality
on condensed vs original data), and the engine behind the k-means-seeded
condensation strategy ablation.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.rng import check_random_state
from repro.neighbors.brute import pairwise_distances


def kmeans_plus_plus(
    data: np.ndarray, n_clusters: int, rng
) -> np.ndarray:
    """k-means++ seeding: spread initial centres by D² sampling.

    Parameters
    ----------
    data:
        Record array, shape ``(n, d)``.
    n_clusters:
        Number of centres to place.
    rng:
        :class:`numpy.random.Generator` to draw from.

    Returns
    -------
    numpy.ndarray, shape (n_clusters, d)
        The selected initial centres.
    """
    n = data.shape[0]
    centres = np.empty((n_clusters, data.shape[1]))
    first = int(rng.integers(0, n))
    centres[0] = data[first]
    closest_squared = pairwise_distances(
        data, centres[0][None, :], squared=True
    )[:, 0]
    for position in range(1, n_clusters):
        total = float(closest_squared.sum())
        if total <= 0.0:
            # All remaining mass is at distance zero (duplicate points):
            # fall back to uniform choice.
            choice = int(rng.integers(0, n))
        else:
            probabilities = closest_squared / total
            choice = int(rng.choice(n, p=probabilities))
        centres[position] = data[choice]
        new_squared = pairwise_distances(
            data, centres[position][None, :], squared=True
        )[:, 0]
        np.minimum(closest_squared, new_squared, out=closest_squared)
    return centres


class KMeans:
    """Lloyd's algorithm.

    Parameters
    ----------
    n_clusters:
        Number of clusters.
    max_iter:
        Iteration cap.
    tol:
        Convergence threshold on total centre movement.
    random_state:
        Seed or generator for the k-means++ initialization.

    Attributes
    ----------
    cluster_centers_ : numpy.ndarray, shape (n_clusters, d)
    labels_ : numpy.ndarray, shape (n,)
    inertia_ : float
        Within-cluster sum of squared distances at convergence.
    n_iter_ : int
    """

    def __init__(self, n_clusters: int = 8, max_iter: int = 300,
                 tol: float = 1e-6, random_state=None):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if tol < 0:
            raise ValueError(f"tol must be non-negative, got {tol}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.random_state = random_state
        self.cluster_centers_ = None
        self.labels_ = None
        self.inertia_ = None
        self.n_iter_ = 0

    def fit(self, data: np.ndarray) -> "KMeans":
        """Cluster ``data`` of shape ``(n, d)``."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[0] < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} records, "
                f"got {data.shape[0]}"
            )
        rng = check_random_state(self.random_state)
        centres = kmeans_plus_plus(data, self.n_clusters, rng)
        labels = np.zeros(data.shape[0], dtype=np.int64)
        for iteration in range(1, self.max_iter + 1):
            squared = pairwise_distances(data, centres, squared=True)
            labels = np.argmin(squared, axis=1)
            new_centres = centres.copy()
            for cluster in range(self.n_clusters):
                members = data[labels == cluster]
                if members.shape[0] > 0:
                    new_centres[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from
                    # its assigned centre.
                    worst = int(
                        np.argmax(np.min(squared, axis=1))
                    )
                    new_centres[cluster] = data[worst]
            movement = float(
                np.linalg.norm(new_centres - centres, axis=1).sum()
            )
            centres = new_centres
            self.n_iter_ = iteration
            if movement <= self.tol:
                break
        squared = pairwise_distances(data, centres, squared=True)
        labels = np.argmin(squared, axis=1)
        self.cluster_centers_ = centres
        self.labels_ = labels
        self.inertia_ = float(
            np.take_along_axis(squared, labels[:, None], axis=1).sum()
        )
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign each record to its nearest learned centre."""
        if self.cluster_centers_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        squared = pairwise_distances(
            data, self.cluster_centers_, squared=True
        )
        return np.argmin(squared, axis=1)

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its cluster labels."""
        return self.fit(data).labels_

"""Binary logistic regression (gradient descent with L2 penalty).

A probabilistic linear classifier rounding out the mining suite — like
the decision tree, it trains on condensation-anonymized records exactly
as it would on originals.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class LogisticRegression:
    """Two-class logistic regression.

    Parameters
    ----------
    penalty:
        L2 regularization strength (0 disables it); the intercept is
        never penalized.
    learning_rate:
        Gradient step size.
    max_iter:
        Iteration cap.
    tol:
        Stop when the gradient's infinity norm drops below this.
    """

    def __init__(self, penalty: float = 1e-3, learning_rate: float = 0.1,
                 max_iter: int = 2000, tol: float = 1e-6):
        if penalty < 0:
            raise ValueError(f"penalty must be non-negative, got {penalty}")
        if learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.penalty = float(penalty)
        self.learning_rate = float(learning_rate)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.classes_ = None
        self.coef_ = None
        self.intercept_ = 0.0
        self.n_iter_ = 0

    def fit(self, data: np.ndarray, labels: np.ndarray):
        """Fit on a two-class labelled record array."""
        data = np.asarray(data, dtype=float)
        labels = np.asarray(labels)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if labels.shape != (data.shape[0],):
            raise ValueError(
                f"labels must have shape ({data.shape[0]},), "
                f"got {labels.shape}"
            )
        self.classes_ = np.unique(labels)
        if self.classes_.shape[0] != 2:
            raise ValueError(
                "logistic regression is binary; got "
                f"{self.classes_.shape[0]} classes"
            )
        targets = (labels == self.classes_[1]).astype(float)
        n, d = data.shape
        weights = np.zeros(d)
        intercept = 0.0
        for iteration in range(1, self.max_iter + 1):
            probabilities = _sigmoid(data @ weights + intercept)
            residual = probabilities - targets
            gradient_w = data.T @ residual / n + self.penalty * weights
            gradient_b = float(residual.mean())
            weights -= self.learning_rate * gradient_w
            intercept -= self.learning_rate * gradient_b
            self.n_iter_ = iteration
            if max(
                float(np.abs(gradient_w).max()), abs(gradient_b)
            ) < self.tol:
                break
        self.coef_ = weights
        self.intercept_ = intercept
        return self

    def decision_function(self, data: np.ndarray) -> np.ndarray:
        """Signed distance to the decision boundary."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return data @ self.coef_ + self.intercept_

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """Class probabilities, shape ``(m, 2)``."""
        positive = _sigmoid(self.decision_function(data))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        positive = self.decision_function(data) >= 0.0
        return np.where(positive, self.classes_[1], self.classes_[0])

    def score(self, data: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(data) == labels))

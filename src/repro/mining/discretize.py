"""Discretization of numeric attributes.

Association-rule mining (and any itemset-based technique) needs
categorical items; these discretizers map continuous attributes to bin
indices, and :func:`transactions_from_bins` turns binned records into
the transaction sets :mod:`repro.mining.apriori` consumes.

In the condensation workflow the discretizer is fit on the *anonymized*
release, demonstrating the paper's claim that itemset mining — which
the perturbation literature needed specialized algorithms for ([9],
[16] in the paper) — runs on condensed output unchanged.
"""

from __future__ import annotations

import numpy as np


class EqualWidthDiscretizer:
    """Bin each attribute into equal-width intervals.

    Parameters
    ----------
    n_bins:
        Number of bins per attribute.
    """

    def __init__(self, n_bins: int = 4):
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        self.n_bins = int(n_bins)
        self.edges_ = None

    def fit(self, data: np.ndarray):
        """Learn per-attribute bin edges from min/max."""
        data = _validate(data)
        minima = data.min(axis=0)
        maxima = data.max(axis=0)
        span = maxima - minima
        span[span == 0.0] = 1.0
        # Interior edges only; outer bins are open-ended so unseen
        # extremes still map to the first/last bin.
        self.edges_ = np.stack([
            minima + span * fraction
            for fraction in np.linspace(0, 1, self.n_bins + 1)[1:-1]
        ])
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Map records to integer bins, shape preserved."""
        if self.edges_ is None:
            raise RuntimeError("discretizer is not fitted; call fit() first")
        data = _validate(data)
        if data.shape[1] != self.edges_.shape[1]:
            raise ValueError(
                f"expected {self.edges_.shape[1]} attributes, "
                f"got {data.shape[1]}"
            )
        bins = np.zeros(data.shape, dtype=np.int64)
        for column in range(data.shape[1]):
            bins[:, column] = np.searchsorted(
                self.edges_[:, column], data[:, column], side="right"
            )
        return bins

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its binning."""
        return self.fit(data).transform(data)


class EqualFrequencyDiscretizer:
    """Bin each attribute at empirical quantiles (equal-count bins)."""

    def __init__(self, n_bins: int = 4):
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        self.n_bins = int(n_bins)
        self.edges_ = None

    def fit(self, data: np.ndarray):
        """Learn per-attribute quantile edges."""
        data = _validate(data)
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self.edges_ = np.quantile(data, quantiles, axis=0)
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Map records to integer bins, shape preserved."""
        if self.edges_ is None:
            raise RuntimeError("discretizer is not fitted; call fit() first")
        data = _validate(data)
        if data.shape[1] != self.edges_.shape[1]:
            raise ValueError(
                f"expected {self.edges_.shape[1]} attributes, "
                f"got {data.shape[1]}"
            )
        bins = np.zeros(data.shape, dtype=np.int64)
        for column in range(data.shape[1]):
            bins[:, column] = np.searchsorted(
                self.edges_[:, column], data[:, column], side="right"
            )
        return bins

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its binning."""
        return self.fit(data).transform(data)


def transactions_from_bins(
    bins: np.ndarray, feature_names=None
) -> list[frozenset]:
    """Turn binned records into transactions of ``"attr=bin"`` items.

    Parameters
    ----------
    bins:
        Integer bin indices, shape ``(n, d)``.
    feature_names:
        Attribute names for the item labels; defaults to
        ``attr_0..attr_{d-1}``.

    Returns
    -------
    list of frozenset
        One transaction per record.

    Raises
    ------
    ValueError
        If ``bins`` is not 2-D or the name count mismatches.
    """
    bins = np.asarray(bins)
    if bins.ndim != 2:
        raise ValueError(f"bins must be 2-D, got shape {bins.shape}")
    if feature_names is None:
        feature_names = [f"attr_{column}" for column in
                         range(bins.shape[1])]
    elif len(feature_names) != bins.shape[1]:
        raise ValueError(
            f"need {bins.shape[1]} feature names, got {len(feature_names)}"
        )
    return [
        frozenset(
            f"{name}={int(value)}"
            for name, value in zip(feature_names, record)
        )
        for record in bins
    ]


def _validate(data: np.ndarray) -> np.ndarray:
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if data.shape[0] == 0:
        raise ValueError("cannot discretize an empty data set")
    return data

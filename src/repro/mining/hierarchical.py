"""Agglomerative hierarchical clustering.

Complements k-means and DBSCAN in the mining suite: a bottom-up
clusterer with single / complete / average linkage.  Like the others it
consumes condensation-anonymized records unchanged — and its bottom-up
merge tree is the conceptual cousin of the condensation group structure
itself.
"""

from __future__ import annotations

import numpy as np

from repro.neighbors.brute import pairwise_distances

_LINKAGES = ("single", "complete", "average")


class AgglomerativeClustering:
    """Bottom-up clustering with a cluster-count stopping rule.

    Parameters
    ----------
    n_clusters:
        Number of clusters to stop at.
    linkage:
        ``"single"`` (minimum pairwise distance), ``"complete"``
        (maximum), or ``"average"`` (unweighted mean) — the
        Lance-Williams family, updated incrementally.

    Attributes
    ----------
    labels_ : numpy.ndarray, shape (n,)
        Cluster index per record, contiguous from 0.
    merge_history_ : list of tuple
        ``(cluster_a, cluster_b, distance)`` per merge, in order —
        enough to cut the dendrogram elsewhere.
    """

    def __init__(self, n_clusters: int = 2, linkage: str = "average"):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if linkage not in _LINKAGES:
            raise ValueError(
                f"linkage must be one of {_LINKAGES}, got {linkage!r}"
            )
        self.n_clusters = int(n_clusters)
        self.linkage = linkage
        self.labels_ = None
        self.merge_history_ = None

    def fit(self, data: np.ndarray) -> "AgglomerativeClustering":
        """Cluster a record array of shape ``(n, d)``."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        n = data.shape[0]
        if n < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} records, "
                f"got {n}"
            )
        # Dissimilarity matrix with inf diagonal; updated in place by
        # Lance-Williams as clusters merge.
        distances = pairwise_distances(data, data)
        np.fill_diagonal(distances, np.inf)
        active = np.ones(n, dtype=bool)
        sizes = np.ones(n)
        membership = np.arange(n)
        history = []
        remaining = n
        while remaining > self.n_clusters:
            flat = np.argmin(distances)
            a, b = np.unravel_index(flat, distances.shape)
            if a > b:
                a, b = b, a
            merge_distance = float(distances[a, b])
            history.append((int(a), int(b), merge_distance))
            # Lance-Williams update of row/column a (absorbing b).
            if self.linkage == "single":
                updated = np.minimum(distances[a], distances[b])
            elif self.linkage == "complete":
                updated = np.maximum(distances[a], distances[b])
            else:
                weight_a = sizes[a] / (sizes[a] + sizes[b])
                weight_b = sizes[b] / (sizes[a] + sizes[b])
                updated = weight_a * distances[a] + weight_b * distances[b]
            distances[a, :] = updated
            distances[:, a] = updated
            distances[a, a] = np.inf
            distances[b, :] = np.inf
            distances[:, b] = np.inf
            sizes[a] += sizes[b]
            active[b] = False
            membership[membership == b] = a
            remaining -= 1
        # Relabel to contiguous 0..n_clusters-1.
        __, labels = np.unique(membership, return_inverse=True)
        self.labels_ = labels
        self.merge_history_ = history
        return self

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its cluster labels."""
        return self.fit(data).labels_

"""CART-style decision tree classifier.

The paper's introduction argues that perturbation-based privacy forces a
redesign of multi-variate algorithms like decision trees, while
condensation lets them run unmodified (§1, citing Murthy's survey [14]).
This module provides that algorithm so the claim is demonstrable: the
tree trains identically on original and condensation-anonymized data.
"""

from __future__ import annotations

import numpy as np


class _TreeNode:
    """A decision node (leaf when ``feature`` is None)."""

    __slots__ = ("feature", "threshold", "left", "right", "prediction",
                 "class_counts")

    def __init__(self, prediction, class_counts):
        self.feature = None
        self.threshold = 0.0
        self.left = None
        self.right = None
        self.prediction = prediction
        self.class_counts = class_counts


def _gini(class_counts: np.ndarray) -> float:
    total = class_counts.sum()
    if total == 0:
        return 0.0
    proportions = class_counts / total
    return 1.0 - float(proportions @ proportions)


class DecisionTreeClassifier:
    """Binary CART tree with Gini impurity splits.

    Parameters
    ----------
    max_depth:
        Depth cap (root is depth 0); ``None`` for unbounded.
    min_samples_split:
        Minimum records in a node to consider splitting.
    min_samples_leaf:
        Minimum records required on each side of a split.
    max_thresholds:
        Per-feature cap on candidate thresholds; when a feature has more
        distinct values, candidates are taken at evenly spaced quantiles.
        Bounds training cost on large numeric data.
    """

    def __init__(self, max_depth: int | None = None,
                 min_samples_split: int = 2, min_samples_leaf: int = 1,
                 max_thresholds: int = 32):
        if max_depth is not None and max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        if max_thresholds < 1:
            raise ValueError(
                f"max_thresholds must be >= 1, got {max_thresholds}"
            )
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_thresholds = int(max_thresholds)
        self.classes_ = None
        self._root = None
        self.n_nodes_ = 0

    def fit(self, data: np.ndarray, labels: np.ndarray):
        """Grow the tree on labelled records."""
        data = np.asarray(data, dtype=float)
        labels = np.asarray(labels)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if labels.shape != (data.shape[0],):
            raise ValueError(
                f"labels must have shape ({data.shape[0]},), "
                f"got {labels.shape}"
            )
        if data.shape[0] == 0:
            raise ValueError("cannot fit a tree on no records")
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self.n_nodes_ = 0
        self._root = self._grow(data, encoded, depth=0)
        return self

    def _class_counts(self, encoded: np.ndarray) -> np.ndarray:
        return np.bincount(encoded, minlength=self.classes_.shape[0]).astype(
            float
        )

    def _grow(self, data, encoded, depth) -> _TreeNode:
        counts = self._class_counts(encoded)
        node = _TreeNode(int(np.argmax(counts)), counts)
        self.n_nodes_ += 1
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or encoded.shape[0] < self.min_samples_split
            or _gini(counts) == 0.0
        ):
            return node
        best = self._best_split(data, encoded, counts)
        if best is None:
            return node
        feature, threshold, left_mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(
            data[left_mask], encoded[left_mask], depth + 1
        )
        node.right = self._grow(
            data[~left_mask], encoded[~left_mask], depth + 1
        )
        return node

    def _candidate_thresholds(self, values: np.ndarray) -> np.ndarray:
        distinct = np.unique(values)
        if distinct.shape[0] < 2:
            return np.empty(0)
        midpoints = (distinct[:-1] + distinct[1:]) / 2.0
        if midpoints.shape[0] <= self.max_thresholds:
            return midpoints
        quantiles = np.linspace(0, midpoints.shape[0] - 1,
                                self.max_thresholds).astype(int)
        return midpoints[quantiles]

    def _best_split(self, data, encoded, parent_counts):
        n = encoded.shape[0]
        parent_impurity = _gini(parent_counts)
        best_gain = 1e-12
        best = None
        for feature in range(data.shape[1]):
            values = data[:, feature]
            for threshold in self._candidate_thresholds(values):
                left_mask = values <= threshold
                n_left = int(left_mask.sum())
                n_right = n - n_left
                if (
                    n_left < self.min_samples_leaf
                    or n_right < self.min_samples_leaf
                ):
                    continue
                left_counts = self._class_counts(encoded[left_mask])
                right_counts = parent_counts - left_counts
                weighted = (
                    n_left * _gini(left_counts)
                    + n_right * _gini(right_counts)
                ) / n
                gain = parent_impurity - weighted
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), left_mask)
        return best

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Predicted class per record."""
        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        predictions = np.empty(data.shape[0], dtype=np.int64)
        for row, record in enumerate(data):
            node = self._root
            while node.feature is not None:
                if record[node.feature] <= node.threshold:
                    node = node.left
                else:
                    node = node.right
            predictions[row] = node.prediction
        return self.classes_[predictions]

    def score(self, data: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(data) == labels))

    @property
    def depth(self) -> int:
        """Actual depth of the grown tree."""
        def measure(node):
            if node is None or node.feature is None:
                return 0
            return 1 + max(measure(node.left), measure(node.right))

        if self._root is None:
            raise RuntimeError("tree is not fitted; call fit() first")
        return measure(self._root)

"""Off-the-shelf mining algorithms.

The paper's headline advantage over the perturbation approach is that
condensation produces *records*, so existing multi-dimensional mining
algorithms run unchanged (§1, §2.3).  This package supplies that
ecosystem of existing algorithms, built from scratch:

* nearest-neighbour classification / regression live in
  :mod:`repro.neighbors` (they double as a core substrate);
* :class:`GaussianNaiveBayes` — a correlation-blind contrast;
* :class:`DecisionTreeClassifier` — the multi-variate algorithm the
  paper argues cannot be adapted to perturbation;
* :class:`KMeans` — clustering;
* :class:`LinearRegression` / :class:`RidgeRegression` — regression
  models highly sensitive to covariance structure.
"""

from repro.mining.apriori import (
    AssociationRule,
    association_rules,
    frequent_itemsets,
    maximal_itemsets,
    rule_overlap,
)
from repro.mining.condensed_direct import (
    CentroidClassifier,
    GroupMixtureClassifier,
    GroupMixtureRegressor,
)
from repro.mining.dbscan import DBSCAN, NOISE
from repro.mining.decision_tree import DecisionTreeClassifier
from repro.mining.discretize import (
    EqualFrequencyDiscretizer,
    EqualWidthDiscretizer,
    transactions_from_bins,
)
from repro.mining.gmm import GaussianMixture
from repro.mining.hierarchical import AgglomerativeClustering
from repro.mining.kmeans import KMeans, kmeans_plus_plus
from repro.mining.linear_model import LinearRegression, RidgeRegression
from repro.mining.logistic import LogisticRegression
from repro.mining.naive_bayes import GaussianNaiveBayes
from repro.mining.pca import PCA, subspace_alignment

__all__ = [
    "AssociationRule",
    "association_rules",
    "frequent_itemsets",
    "maximal_itemsets",
    "rule_overlap",
    "AgglomerativeClustering",
    "CentroidClassifier",
    "GroupMixtureClassifier",
    "GroupMixtureRegressor",
    "DBSCAN",
    "NOISE",
    "DecisionTreeClassifier",
    "GaussianMixture",
    "LogisticRegression",
    "PCA",
    "subspace_alignment",
    "EqualFrequencyDiscretizer",
    "EqualWidthDiscretizer",
    "transactions_from_bins",
    "KMeans",
    "kmeans_plus_plus",
    "LinearRegression",
    "RidgeRegression",
    "GaussianNaiveBayes",
]

"""Principal component analysis.

PCA is the multi-variate technique most directly tied to what
condensation preserves — the covariance eigenstructure — so it doubles
as a diagnostic: principal axes fitted on the anonymized release should
align with axes fitted on the original.  It is also the canonical
algorithm the perturbation approach cannot serve, since per-dimension
aggregate distributions carry no covariance at all.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.symmetric import sorted_eigh


class PCA:
    """Eigendecomposition-based PCA.

    Parameters
    ----------
    n_components:
        Number of principal axes to keep; ``None`` keeps all.

    Attributes
    ----------
    components_ : numpy.ndarray, shape (n_components, d)
        Principal axes, rows sorted by decreasing explained variance.
    explained_variance_ : numpy.ndarray, shape (n_components,)
        Variance along each kept axis.
    explained_variance_ratio_ : numpy.ndarray, shape (n_components,)
        Fraction of total variance per kept axis.
    mean_ : numpy.ndarray, shape (d,)
    """

    def __init__(self, n_components: int | None = None):
        if n_components is not None and n_components < 1:
            raise ValueError(
                f"n_components must be >= 1, got {n_components}"
            )
        self.n_components = n_components
        self.components_ = None
        self.explained_variance_ = None
        self.explained_variance_ratio_ = None
        self.mean_ = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit principal axes on a record array."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if data.shape[0] < 2:
            raise ValueError("PCA needs at least 2 records")
        n_keep = self.n_components or data.shape[1]
        if n_keep > data.shape[1]:
            raise ValueError(
                f"n_components={n_keep} exceeds dimensionality "
                f"{data.shape[1]}"
            )
        self.mean_ = data.mean(axis=0)
        centered = data - self.mean_
        covariance = centered.T @ centered / data.shape[0]
        eigenvalues, eigenvectors = sorted_eigh(covariance)
        total = float(eigenvalues.sum()) or 1.0
        self.components_ = eigenvectors[:, :n_keep].T
        self.explained_variance_ = eigenvalues[:n_keep]
        self.explained_variance_ratio_ = eigenvalues[:n_keep] / total
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project records onto the principal axes."""
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted; call fit() first")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        if data.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} attributes, "
                f"got {data.shape[1]}"
            )
        return (data - self.mean_) @ self.components_.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its projection."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Map projections back into the original space."""
        if self.components_ is None:
            raise RuntimeError("PCA is not fitted; call fit() first")
        projected = np.atleast_2d(np.asarray(projected, dtype=float))
        return projected @ self.components_ + self.mean_


def subspace_alignment(pca_a: PCA, pca_b: PCA, n_axes: int) -> float:
    """Alignment of two fitted PCAs' leading subspaces, in ``[0, 1]``.

    The mean squared singular value of ``A Bᵀ`` for the two models'
    leading ``n_axes`` components: 1 when the subspaces coincide, ~0
    when orthogonal.  Used to check that condensation preserves the
    principal structure of the data.

    Parameters
    ----------
    pca_a, pca_b:
        Fitted :class:`PCA` models to compare.
    n_axes:
        Number of leading components defining each subspace.

    Returns
    -------
    float
        Mean squared singular value of the cross-projection, in
        ``[0, 1]``.

    Raises
    ------
    RuntimeError
        If either model is unfitted.
    ValueError
        If the two component blocks disagree on shape.
    """
    if pca_a.components_ is None or pca_b.components_ is None:
        raise RuntimeError("both PCA models must be fitted")
    a = pca_a.components_[:n_axes]
    b = pca_b.components_[:n_axes]
    if a.shape != b.shape:
        raise ValueError("the two models disagree on shape")
    singular_values = np.linalg.svd(a @ b.T, compute_uv=False)
    return float(np.mean(singular_values**2))

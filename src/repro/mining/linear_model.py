"""Linear models: ordinary least squares and ridge regression.

Used for the Abalone-style regression scenario and as another existing
algorithm that consumes condensation-anonymized data unchanged.  Linear
regression is particularly sensitive to the covariance structure of its
inputs — exactly what condensation is designed to preserve — so it makes
a sharp end-to-end check.
"""

from __future__ import annotations

import numpy as np


class LinearRegression:
    """Ordinary least squares via the pseudo-inverse.

    Attributes
    ----------
    coef_ : numpy.ndarray, shape (d,)
    intercept_ : float
    """

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = bool(fit_intercept)
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, data: np.ndarray, targets: np.ndarray):
        """Fit by least squares."""
        data, targets = _validate_regression_inputs(data, targets)
        if self.fit_intercept:
            design = np.hstack([data, np.ones((data.shape[0], 1))])
        else:
            design = data
        solution, *__ = np.linalg.lstsq(design, targets, rcond=None)
        if self.fit_intercept:
            self.coef_ = solution[:-1]
            self.intercept_ = float(solution[-1])
        else:
            self.coef_ = solution
            self.intercept_ = 0.0
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Predicted targets."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return data @ self.coef_ + self.intercept_

    def score(self, data: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R²."""
        from repro.metrics.regression import r2_score

        targets = np.asarray(targets, dtype=float)
        return r2_score(targets, self.predict(data))


class RidgeRegression:
    """L2-regularized least squares (closed form).

    Parameters
    ----------
    alpha:
        Regularization strength; 0 recovers OLS.  The intercept is never
        regularized.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = float(alpha)
        self.fit_intercept = bool(fit_intercept)
        self.coef_ = None
        self.intercept_ = 0.0

    def fit(self, data: np.ndarray, targets: np.ndarray):
        """Fit by the regularized normal equations."""
        data, targets = _validate_regression_inputs(data, targets)
        if self.fit_intercept:
            data_mean = data.mean(axis=0)
            target_mean = float(targets.mean())
            centred = data - data_mean
            centred_targets = targets - target_mean
        else:
            data_mean = np.zeros(data.shape[1])
            target_mean = 0.0
            centred = data
            centred_targets = targets
        gram = centred.T @ centred + self.alpha * np.eye(data.shape[1])
        moment = centred.T @ centred_targets
        self.coef_ = np.linalg.solve(gram, moment)
        self.intercept_ = target_mean - float(data_mean @ self.coef_)
        return self

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Predicted targets."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted; call fit() first")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        return data @ self.coef_ + self.intercept_

    def score(self, data: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination R²."""
        from repro.metrics.regression import r2_score

        targets = np.asarray(targets, dtype=float)
        return r2_score(targets, self.predict(data))


def _validate_regression_inputs(data: np.ndarray, targets: np.ndarray):
    data = np.asarray(data, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if targets.shape != (data.shape[0],):
        raise ValueError(
            f"targets must have shape ({data.shape[0]},), "
            f"got {targets.shape}"
        )
    if data.shape[0] == 0:
        raise ValueError("cannot fit on no records")
    return data, targets

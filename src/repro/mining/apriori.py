"""Apriori frequent-itemset and association-rule mining.

The condensation paper's introduction leans on association rules as a
problem the perturbation approach had to re-solve with specialized
algorithms ([9], [16] there).  With condensation the standard Apriori
algorithm runs on the anonymized records directly; this module supplies
that standard algorithm, from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations


@dataclass(frozen=True)
class AssociationRule:
    """An association rule ``antecedent -> consequent``.

    Attributes
    ----------
    antecedent, consequent:
        Disjoint frozen item sets.
    support:
        Fraction of transactions containing the full itemset.
    confidence:
        ``support(antecedent ∪ consequent) / support(antecedent)``.
    lift:
        Confidence over the consequent's base rate; > 1 means the
        antecedent genuinely raises the consequent's likelihood.
    """

    antecedent: frozenset
    consequent: frozenset
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:
        left = ", ".join(sorted(self.antecedent))
        right = ", ".join(sorted(self.consequent))
        return (
            f"{{{left}}} -> {{{right}}} "
            f"(support={self.support:.3f}, "
            f"confidence={self.confidence:.3f}, lift={self.lift:.2f})"
        )


def frequent_itemsets(
    transactions, min_support: float = 0.1, max_length: int | None = None
) -> dict[frozenset, float]:
    """Mine itemsets with support at least ``min_support`` (Apriori).

    Parameters
    ----------
    transactions:
        Sequence of item collections (each becomes a frozenset).
    min_support:
        Minimum fraction of transactions an itemset must appear in.
    max_length:
        Optional cap on itemset size.

    Returns
    -------
    dict
        Itemset -> support, for every frequent itemset.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(
            f"min_support must be in (0, 1], got {min_support}"
        )
    transactions = [frozenset(transaction) for transaction in transactions]
    if not transactions:
        raise ValueError("cannot mine an empty transaction list")
    n = len(transactions)
    minimum_count = min_support * n

    # L1: frequent single items.
    item_counts: dict[frozenset, int] = {}
    for transaction in transactions:
        for item in transaction:
            key = frozenset([item])
            item_counts[key] = item_counts.get(key, 0) + 1
    current_level = {
        itemset: count
        for itemset, count in item_counts.items()
        if count >= minimum_count
    }
    frequent: dict[frozenset, float] = {
        itemset: count / n for itemset, count in current_level.items()
    }

    length = 1
    while current_level:
        length += 1
        if max_length is not None and length > max_length:
            break
        candidates = _generate_candidates(
            list(current_level.keys()), length
        )
        if not candidates:
            break
        counts = dict.fromkeys(candidates, 0)
        for transaction in transactions:
            for candidate in candidates:
                if candidate <= transaction:
                    counts[candidate] += 1
        current_level = {
            itemset: count
            for itemset, count in counts.items()
            if count >= minimum_count
        }
        frequent.update(
            (itemset, count / n)
            for itemset, count in current_level.items()
        )
    return frequent


def _generate_candidates(previous_level, length):
    """Join step with Apriori pruning."""
    previous_set = set(previous_level)
    candidates = set()
    for position, left in enumerate(previous_level):
        for right in previous_level[position + 1:]:
            union = left | right
            if len(union) != length:
                continue
            # Prune: every (length-1)-subset must itself be frequent.
            if all(
                frozenset(subset) in previous_set
                for subset in combinations(union, length - 1)
            ):
                candidates.add(union)
    return candidates


def association_rules(
    transactions,
    min_support: float = 0.1,
    min_confidence: float = 0.6,
    max_length: int | None = None,
) -> list[AssociationRule]:
    """Mine association rules meeting support and confidence thresholds.

    Parameters
    ----------
    transactions:
        Iterable of item collections (one per transaction).
    min_support:
        Minimum fraction of transactions an itemset must appear in.
    min_confidence:
        Minimum rule confidence, in ``(0, 1]``.
    max_length:
        Optional cap on itemset length.

    Returns
    -------
    list of AssociationRule
        Rules sorted by descending lift, then confidence.

    Raises
    ------
    ValueError
        If ``min_confidence`` is outside ``(0, 1]``.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    frequent = frequent_itemsets(
        transactions, min_support=min_support, max_length=max_length
    )
    rules = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for antecedent_length in range(1, len(itemset)):
            for antecedent_items in combinations(
                sorted(itemset), antecedent_length
            ):
                antecedent = frozenset(antecedent_items)
                consequent = itemset - antecedent
                antecedent_support = frequent.get(antecedent)
                consequent_support = frequent.get(consequent)
                if antecedent_support is None or consequent_support is None:
                    continue
                confidence = support / antecedent_support
                if confidence < min_confidence:
                    continue
                rules.append(AssociationRule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support=support,
                    confidence=confidence,
                    lift=confidence / consequent_support,
                ))
    rules.sort(key=lambda rule: (-rule.lift, -rule.confidence))
    return rules


def maximal_itemsets(frequent: dict[frozenset, float]):
    """Filter a frequent-itemset dict down to its maximal members.

    An itemset is maximal when no frequent superset exists; the maximal
    family is the compact summary of the itemset lattice (every
    frequent itemset is a subset of some maximal one).

    Parameters
    ----------
    frequent:
        Mapping of frequent itemsets to their supports.

    Returns
    -------
    dict of frozenset to float
        The maximal itemsets with their supports.
    """
    itemsets = sorted(frequent, key=len, reverse=True)
    maximal: list[frozenset] = []
    for itemset in itemsets:
        if not any(itemset < kept for kept in maximal):
            maximal.append(itemset)
    return {itemset: frequent[itemset] for itemset in maximal}


def rule_overlap(
    rules_a: list[AssociationRule], rules_b: list[AssociationRule]
) -> float:
    """Jaccard overlap between two rule sets (by antecedent/consequent).

    Used to quantify how well rules mined from anonymized data agree
    with rules mined from the original.

    Parameters
    ----------
    rules_a, rules_b:
        Rule lists to compare; only antecedent/consequent pairs matter.

    Returns
    -------
    float
        Jaccard overlap in ``[0, 1]``; 1.0 when both sets are empty.
    """
    keys_a = {(rule.antecedent, rule.consequent) for rule in rules_a}
    keys_b = {(rule.antecedent, rule.consequent) for rule in rules_b}
    if not keys_a and not keys_b:
        return 1.0
    return len(keys_a & keys_b) / len(keys_a | keys_b)

"""Gaussian mixture models via expectation-maximization.

A full generative density model, from scratch.  Beyond being another
algorithm that consumes anonymized records unchanged, the GMM gives the
reproduction a *generative utility* measure: fit a mixture on the
original data and on the release, then compare the held-out
log-likelihood each assigns to fresh original records (bench A14) —
a stricter notion of fidelity than second moments alone.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.rng import check_random_state
from repro.mining.kmeans import KMeans

#: Log of the smallest responsibility denominator we allow.
_LOG_FLOOR = -745.0


class GaussianMixture:
    """Full-covariance Gaussian mixture fit by EM.

    Parameters
    ----------
    n_components:
        Number of mixture components.
    max_iter:
        EM iteration cap.
    tol:
        Stop when the mean log-likelihood improves by less than this.
    regularization:
        Diagonal loading added to every component covariance each
        M step, relative to the data's average attribute variance.
    random_state:
        Seed or generator (drives the k-means initialization).

    Attributes
    ----------
    weights_ : numpy.ndarray, shape (n_components,)
    means_ : numpy.ndarray, shape (n_components, d)
    covariances_ : numpy.ndarray, shape (n_components, d, d)
    converged_ : bool
    n_iter_ : int
    """

    def __init__(self, n_components: int = 2, max_iter: int = 200,
                 tol: float = 1e-5, regularization: float = 1e-6,
                 random_state=None):
        if n_components < 1:
            raise ValueError(
                f"n_components must be >= 1, got {n_components}"
            )
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if tol < 0:
            raise ValueError(f"tol must be non-negative, got {tol}")
        if regularization < 0:
            raise ValueError(
                f"regularization must be non-negative, "
                f"got {regularization}"
            )
        self.n_components = int(n_components)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.regularization = float(regularization)
        self.random_state = random_state
        self.weights_ = None
        self.means_ = None
        self.covariances_ = None
        self.converged_ = False
        self.n_iter_ = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, data: np.ndarray) -> "GaussianMixture":
        """Fit the mixture by EM from a k-means initialization."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        n, d = data.shape
        if n < self.n_components:
            raise ValueError(
                f"need at least n_components={self.n_components} "
                f"records, got {n}"
            )
        rng = check_random_state(self.random_state)
        loading = self.regularization * max(
            float(data.var(axis=0).mean()), 1e-12
        ) + 1e-10

        # Initialize from k-means assignments.
        kmeans = KMeans(
            n_clusters=self.n_components, random_state=rng
        ).fit(data)
        self.weights_ = np.zeros(self.n_components)
        self.means_ = np.zeros((self.n_components, d))
        self.covariances_ = np.zeros((self.n_components, d, d))
        for component in range(self.n_components):
            members = data[kmeans.labels_ == component]
            if members.shape[0] == 0:
                members = data[
                    rng.choice(n, size=max(2, d), replace=False)
                ]
            self.weights_[component] = members.shape[0] / n
            self.means_[component] = members.mean(axis=0)
            centered = members - self.means_[component]
            self.covariances_[component] = (
                centered.T @ centered / members.shape[0]
                + loading * np.eye(d)
            )
        self.weights_ /= self.weights_.sum()

        previous = -np.inf
        for iteration in range(1, self.max_iter + 1):
            log_joint = self._log_joint(data)
            log_norm = _logsumexp(log_joint)
            log_likelihood = float(log_norm.mean())
            responsibilities = np.exp(
                log_joint - log_norm[:, None]
            )
            # M step.
            mass = responsibilities.sum(axis=0)
            mass = np.clip(mass, 1e-12, None)
            self.weights_ = mass / n
            self.means_ = (
                responsibilities.T @ data
            ) / mass[:, None]
            for component in range(self.n_components):
                centered = data - self.means_[component]
                weighted = centered * responsibilities[
                    :, component
                ][:, None]
                self.covariances_[component] = (
                    weighted.T @ centered / mass[component]
                    + loading * np.eye(d)
                )
            self.n_iter_ = iteration
            if log_likelihood - previous < self.tol:
                self.converged_ = True
                break
            previous = log_likelihood
        return self

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _log_joint(self, data: np.ndarray) -> np.ndarray:
        """``log(weight_c · N(x | μ_c, Σ_c))`` per record and component."""
        self._require_fitted()
        data = np.atleast_2d(np.asarray(data, dtype=float))
        if data.shape[1] != self.means_.shape[1]:
            raise ValueError(
                f"expected {self.means_.shape[1]} attributes, "
                f"got {data.shape[1]}"
            )
        d = data.shape[1]
        log_joint = np.empty((data.shape[0], self.n_components))
        for component in range(self.n_components):
            covariance = self.covariances_[component]
            sign, log_determinant = np.linalg.slogdet(covariance)
            precision = np.linalg.inv(covariance)
            centered = data - self.means_[component]
            mahalanobis = np.einsum(
                "ij,jk,ik->i", centered, precision, centered
            )
            log_joint[:, component] = (
                np.log(self.weights_[component] + 1e-300)
                - 0.5 * (
                    d * np.log(2.0 * np.pi)
                    + log_determinant
                    + mahalanobis
                )
            )
        return log_joint

    def score_samples(self, data: np.ndarray) -> np.ndarray:
        """Per-record log-density under the mixture."""
        return _logsumexp(self._log_joint(data))

    def score(self, data: np.ndarray) -> float:
        """Mean log-likelihood of a record array."""
        return float(self.score_samples(data).mean())

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Most responsible component per record."""
        return np.argmax(self._log_joint(data), axis=1)

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """Component responsibilities per record."""
        log_joint = self._log_joint(data)
        log_norm = _logsumexp(log_joint)
        return np.exp(log_joint - log_norm[:, None])

    def sample(self, n_samples: int, random_state=None) -> np.ndarray:
        """Draw records from the fitted mixture."""
        self._require_fitted()
        if n_samples < 1:
            raise ValueError(
                f"n_samples must be >= 1, got {n_samples}"
            )
        rng = check_random_state(random_state)
        assignments = rng.choice(
            self.n_components, size=n_samples, p=self.weights_
        )
        d = self.means_.shape[1]
        samples = np.empty((n_samples, d))
        for component in range(self.n_components):
            members = np.flatnonzero(assignments == component)
            if members.shape[0] == 0:
                continue
            samples[members] = rng.multivariate_normal(
                self.means_[component],
                self.covariances_[component],
                size=members.shape[0],
                method="cholesky",
            )
        return samples

    def _require_fitted(self):
        if self.means_ is None:
            raise RuntimeError("mixture is not fitted; call fit() first")


def _logsumexp(log_values: np.ndarray) -> np.ndarray:
    """Row-wise log-sum-exp with the usual max shift."""
    peak = log_values.max(axis=1, keepdims=True)
    peak = np.clip(peak, _LOG_FLOOR, None)
    return peak[:, 0] + np.log(
        np.exp(log_values - peak).sum(axis=1)
    )

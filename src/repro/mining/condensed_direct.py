"""Mining directly on condensed statistics, skipping generation.

The paper's pipeline regenerates records so existing algorithms run
unchanged.  A consumer that is willing to understand the condensed form
can skip that step: each group *is* a local Gaussian summary
(mean + covariance + weight), so group statistics feed model-based
classifiers directly.  Two such consumers:

* :class:`CentroidClassifier` — weighted nearest-centroid over each
  class's groups; the zero-generation analogue of 1-NN on generated
  data.
* :class:`GroupMixtureClassifier` — treats each class's groups as a
  mixture of Gaussians (weights `n(G)/N`, means `centroid`, covariances
  `C(G)` regularized) and classifies by mixture likelihood.

Both consume :class:`repro.core.statistics.CondensedModel` objects per
class, e.g. the ``models_`` of a fitted
:class:`repro.core.condenser.ClasswiseCondenser` — no anonymized data
set ever needs to be materialized, which also removes the generation
sampling noise from the pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.core.statistics import CondensedModel
from repro.neighbors.brute import pairwise_distances


def _validate_class_models(class_models: dict) -> dict:
    if not class_models:
        raise ValueError("need at least one class model")
    dimensions = {
        model.n_features for model in class_models.values()
    }
    if len(dimensions) != 1:
        raise ValueError(
            f"class models disagree on dimensionality: {sorted(dimensions)}"
        )
    return class_models


class CentroidClassifier:
    """Weighted nearest-group-centroid classification.

    Parameters
    ----------
    class_models:
        Mapping label -> :class:`CondensedModel` for that class (as
        produced by ``ClasswiseCondenser.fit``).

    Notes
    -----
    The predicted label is the class owning the closest group centroid —
    effectively 1-NN over the per-class codebooks the condensation
    produced, with no generated records in the loop.
    """

    def __init__(self, class_models: dict):
        class_models = _validate_class_models(class_models)
        self.classes_ = np.array(sorted(class_models))
        centroid_blocks = []
        label_blocks = []
        for position, label in enumerate(self.classes_):
            model = class_models[label]
            centroid_blocks.append(model.centroids())
            label_blocks.append(
                np.full(model.n_groups, position, dtype=np.int64)
            )
        self._centroids = np.vstack(centroid_blocks)
        self._labels = np.concatenate(label_blocks)

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Predicted label per record."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        distances = pairwise_distances(data, self._centroids)
        nearest = np.argmin(distances, axis=1)
        return self.classes_[self._labels[nearest]]

    def score(self, data: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(data) == labels))


class GroupMixtureRegressor:
    """Conditional-mean regression from joint condensed statistics.

    Fit condensation over the *joint* space ``[attributes, target]``
    (as :func:`repro.evaluation.protocol.regression_condition` does with
    ``target_handling="joint"``); each group is then a local Gaussian
    over ``(x, y)`` whose conditional mean is the textbook formula

        E[y | x] = μ_y + C_yx · C_xx⁻¹ · (x − μ_x)

    The prediction mixes the per-group conditional means with
    responsibilities proportional to each group's (regularized) marginal
    density at ``x`` — locally linear regression, straight from the
    statistics, no generated records.

    Parameters
    ----------
    model:
        A condensed model over the joint space; the *last* column is
        the target.
    regularization:
        Relative diagonal loading of each group's attribute covariance.
    """

    def __init__(self, model: CondensedModel, regularization: float = 0.05):
        if regularization <= 0:
            raise ValueError(
                f"regularization must be positive, got {regularization}"
            )
        if model.n_features < 2:
            raise ValueError(
                "joint condensation needs at least one attribute plus "
                "the target"
            )
        self.regularization = float(regularization)
        self._components = []
        total = model.total_count
        for group in model.groups:
            joint_mean = group.centroid
            joint_covariance = group.covariance
            d = joint_mean.shape[0] - 1
            mean_x = joint_mean[:d]
            mean_y = float(joint_mean[d])
            cov_xx = joint_covariance[:d, :d]
            cov_yx = joint_covariance[d, :d]
            eigenvalues = np.linalg.eigvalsh(cov_xx)
            loading = self.regularization * max(
                float(eigenvalues.mean()), 1e-12
            )
            cov_xx = cov_xx + loading * np.eye(d)
            precision = np.linalg.inv(cov_xx)
            sign, log_determinant = np.linalg.slogdet(cov_xx)
            if sign <= 0:
                raise ValueError(
                    "regularized covariance is not positive definite"
                )
            slope = precision @ cov_yx
            log_weight = np.log(group.count / total)
            log_norm = -0.5 * (
                d * np.log(2.0 * np.pi) + log_determinant
            )
            self._components.append(
                (mean_x, mean_y, precision, slope,
                 log_weight + log_norm)
            )
        self.n_features = model.n_features - 1

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Predicted target per record (attributes only, no target)."""
        data = np.atleast_2d(np.asarray(data, dtype=float))
        if data.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} attributes, "
                f"got {data.shape[1]}"
            )
        n = data.shape[0]
        log_densities = np.empty((n, len(self._components)))
        conditional_means = np.empty((n, len(self._components)))
        for column, (mean_x, mean_y, precision, slope,
                     log_constant) in enumerate(self._components):
            centered = data - mean_x
            mahalanobis = np.einsum(
                "ij,jk,ik->i", centered, precision, centered
            )
            log_densities[:, column] = log_constant - 0.5 * mahalanobis
            conditional_means[:, column] = mean_y + centered @ slope
        peak = log_densities.max(axis=1, keepdims=True)
        responsibilities = np.exp(log_densities - peak)
        responsibilities /= responsibilities.sum(axis=1, keepdims=True)
        return np.einsum(
            "ij,ij->i", responsibilities, conditional_means
        )

    def score(self, data: np.ndarray, targets: np.ndarray,
              tol: float = 1.0) -> float:
        """Within-tolerance accuracy (the paper's Abalone metric)."""
        from repro.metrics.regression import tolerance_accuracy

        targets = np.asarray(targets, dtype=float)
        return tolerance_accuracy(targets, self.predict(data), tol=tol)


class GroupMixtureClassifier:
    """Mixture-of-Gaussians likelihood classification from group stats.

    Parameters
    ----------
    class_models:
        Mapping label -> :class:`CondensedModel` for that class.
    regularization:
        Diagonal loading added to every group covariance (relative to
        its mean eigenvalue) so small or degenerate groups still define
        proper densities.
    """

    def __init__(self, class_models: dict, regularization: float = 0.05):
        if regularization <= 0:
            raise ValueError(
                f"regularization must be positive, got {regularization}"
            )
        class_models = _validate_class_models(class_models)
        self.classes_ = np.array(sorted(class_models))
        self.regularization = float(regularization)
        total_records = sum(
            model.total_count for model in class_models.values()
        )
        self._class_log_prior = np.log(np.array([
            class_models[label].total_count / total_records
            for label in self.classes_
        ]))
        self._components: list[list] = []
        for label in self.classes_:
            model: CondensedModel = class_models[label]
            components = []
            for group in model.groups:
                mean = group.centroid
                covariance = group.covariance
                d = mean.shape[0]
                eigenvalues = np.linalg.eigvalsh(covariance)
                loading = self.regularization * max(
                    float(eigenvalues.mean()), 1e-12
                )
                covariance = covariance + loading * np.eye(d)
                # Precompute the Gaussian's log-normalizer and precision.
                sign, log_determinant = np.linalg.slogdet(covariance)
                if sign <= 0:
                    raise ValueError(
                        "regularized covariance is not positive definite"
                    )
                precision = np.linalg.inv(covariance)
                log_weight = np.log(group.count / model.total_count)
                log_norm = -0.5 * (
                    d * np.log(2.0 * np.pi) + log_determinant
                )
                components.append(
                    (mean, precision, log_weight + log_norm)
                )
            self._components.append(components)

    def _class_log_likelihood(self, data: np.ndarray) -> np.ndarray:
        data = np.atleast_2d(np.asarray(data, dtype=float))
        scores = np.empty((data.shape[0], self.classes_.shape[0]))
        for position, components in enumerate(self._components):
            component_scores = np.empty(
                (data.shape[0], len(components))
            )
            for column, (mean, precision, log_constant) in enumerate(
                components
            ):
                centered = data - mean
                mahalanobis = np.einsum(
                    "ij,jk,ik->i", centered, precision, centered
                )
                component_scores[:, column] = (
                    log_constant - 0.5 * mahalanobis
                )
            # log-sum-exp across the class's groups.
            peak = component_scores.max(axis=1, keepdims=True)
            scores[:, position] = peak[:, 0] + np.log(
                np.exp(component_scores - peak).sum(axis=1)
            )
        return scores + self._class_log_prior[None, :]

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Maximum-posterior label per record."""
        scores = self._class_log_likelihood(data)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """Posterior class probabilities."""
        scores = self._class_log_likelihood(data)
        shifted = scores - scores.max(axis=1, keepdims=True)
        probabilities = np.exp(shifted)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def score(self, data: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(data) == labels))

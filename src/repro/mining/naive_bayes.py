"""Gaussian naive Bayes classifier.

A second off-the-shelf mining algorithm for the paper's central claim:
condensation-anonymized data plugs into existing algorithms unchanged.
Naive Bayes is also an instructive contrast — it ignores inter-attribute
correlations, the very structure condensation preserves and the additive
perturbation baseline destroys.
"""

from __future__ import annotations

import numpy as np


class GaussianNaiveBayes:
    """Per-class independent Gaussian likelihood classifier.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest per-attribute variance added to every
        class variance for numerical stability.
    """

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError(
                f"var_smoothing must be non-negative, got {var_smoothing}"
            )
        self.var_smoothing = float(var_smoothing)
        self.classes_ = None
        self.class_prior_ = None
        self.theta_ = None
        self.var_ = None

    def fit(self, data: np.ndarray, labels: np.ndarray):
        """Estimate per-class means, variances and priors."""
        data = np.asarray(data, dtype=float)
        labels = np.asarray(labels)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if labels.shape != (data.shape[0],):
            raise ValueError(
                f"labels must have shape ({data.shape[0]},), "
                f"got {labels.shape}"
            )
        self.classes_ = np.unique(labels)
        n_classes = self.classes_.shape[0]
        d = data.shape[1]
        self.theta_ = np.zeros((n_classes, d))
        self.var_ = np.zeros((n_classes, d))
        self.class_prior_ = np.zeros(n_classes)
        epsilon = self.var_smoothing * float(data.var(axis=0).max() or 1.0)
        for position, label in enumerate(self.classes_):
            members = data[labels == label]
            self.theta_[position] = members.mean(axis=0)
            self.var_[position] = members.var(axis=0) + epsilon
            self.class_prior_[position] = members.shape[0] / data.shape[0]
        return self

    def _joint_log_likelihood(self, data: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        if data.shape[1] != self.theta_.shape[1]:
            raise ValueError(
                f"expected {self.theta_.shape[1]} attributes, "
                f"got {data.shape[1]}"
            )
        log_likelihoods = np.empty((data.shape[0], self.classes_.shape[0]))
        for position in range(self.classes_.shape[0]):
            mean = self.theta_[position]
            variance = self.var_[position]
            log_norm = -0.5 * np.sum(np.log(2.0 * np.pi * variance))
            deviations = (data - mean) ** 2 / variance
            log_likelihoods[:, position] = (
                log_norm
                - 0.5 * deviations.sum(axis=1)
                + np.log(self.class_prior_[position])
            )
        return log_likelihoods

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Maximum a-posteriori class per record."""
        log_likelihoods = self._joint_log_likelihood(data)
        return self.classes_[np.argmax(log_likelihoods, axis=1)]

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """Posterior class probabilities via the log-sum-exp trick."""
        log_likelihoods = self._joint_log_likelihood(data)
        shifted = log_likelihoods - log_likelihoods.max(
            axis=1, keepdims=True
        )
        probabilities = np.exp(shifted)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def score(self, data: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(data) == labels))

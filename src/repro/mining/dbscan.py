"""DBSCAN density-based clustering.

The paper cites density-based clustering with noise (its reference
[10]) when discussing how anomalies affect mining.  DBSCAN is the
textbook representative: it finds arbitrarily shaped clusters and
explicitly labels outliers — so running it on condensation-anonymized
data shows both that clustering structure survives and that the
generation step's noise-smoothing changes which points register as
outliers.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.neighbors.brute import pairwise_distances

#: Label assigned to records in no cluster.
NOISE = -1


class DBSCAN:
    """Density-based clustering with noise labelling.

    Parameters
    ----------
    eps:
        Neighbourhood radius.
    min_samples:
        Minimum neighbourhood size (including the point itself) for a
        point to be a core point.

    Attributes
    ----------
    labels_ : numpy.ndarray, shape (n,)
        Cluster index per record; ``-1`` marks noise.
    core_sample_indices_ : numpy.ndarray
        Indices of the core points found.
    n_clusters_ : int
    """

    def __init__(self, eps: float = 0.5, min_samples: int = 5):
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        self.eps = float(eps)
        self.min_samples = int(min_samples)
        self.labels_ = None
        self.core_sample_indices_ = None
        self.n_clusters_ = 0

    def fit(self, data: np.ndarray) -> "DBSCAN":
        """Cluster a record array."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        n = data.shape[0]
        if n == 0:
            raise ValueError("cannot cluster an empty data set")
        # Precompute the neighbourhood lists (O(n^2) memory-lean rows).
        neighbourhoods = []
        for start in range(0, n, 512):
            block = pairwise_distances(
                data[start:start + 512], data, squared=True
            )
            within = block <= self.eps**2
            neighbourhoods.extend(
                np.flatnonzero(row) for row in within
            )
        is_core = np.array(
            [len(neighbours) >= self.min_samples
             for neighbours in neighbourhoods]
        )
        labels = np.full(n, NOISE, dtype=np.int64)
        cluster = 0
        for seed in range(n):
            if labels[seed] != NOISE or not is_core[seed]:
                continue
            # Grow a new cluster by BFS over core points.
            labels[seed] = cluster
            frontier = deque([seed])
            while frontier:
                point = frontier.popleft()
                if not is_core[point]:
                    continue
                for neighbour in neighbourhoods[point]:
                    if labels[neighbour] == NOISE:
                        labels[neighbour] = cluster
                        frontier.append(neighbour)
            cluster += 1
        self.labels_ = labels
        self.core_sample_indices_ = np.flatnonzero(is_core)
        self.n_clusters_ = cluster
        return self

    def fit_predict(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its cluster labels."""
        return self.fit(data).labels_

"""k-nearest-neighbour classification and regression.

These are the downstream mining algorithms of the paper's evaluation: a
"simple nearest neighbor classifier" (§2.3, §4) for Ionosphere / Ecoli /
Pima, and nearest-neighbour age prediction for Abalone.  They run
unchanged on original or condensation-anonymized data — which is the
paper's central claim.
"""

from __future__ import annotations

import numpy as np

from repro.neighbors.brute import BruteForceIndex
from repro.neighbors.kdtree import KDTreeIndex
from repro.neighbors.lsh import LSHIndex

_INDEX_BUILDERS = {
    "brute": BruteForceIndex,
    "kd_tree": KDTreeIndex,
    "lsh": LSHIndex,
}


def _build_index(points: np.ndarray, algorithm: str):
    try:
        builder = _INDEX_BUILDERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; "
            f"expected one of {sorted(_INDEX_BUILDERS)}"
        ) from None
    return builder(points)


class KNeighborsClassifier:
    """Majority-vote k-NN classifier.

    Parameters
    ----------
    n_neighbors:
        Number of neighbours to vote; 1 reproduces the paper's simple
        nearest-neighbour classifier.
    algorithm:
        ``"brute"`` (default), ``"kd_tree"`` (exact, faster in low
        dimension), or ``"lsh"`` (approximate, for large n).
    """

    def __init__(self, n_neighbors: int = 1, algorithm: str = "brute"):
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = int(n_neighbors)
        self.algorithm = algorithm
        self._index = None
        self._labels = None
        self.classes_ = None

    def fit(self, data: np.ndarray, labels: np.ndarray):
        """Index the training records and remember their labels."""
        data = np.asarray(data, dtype=float)
        labels = np.asarray(labels)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if labels.shape != (data.shape[0],):
            raise ValueError(
                f"labels must have shape ({data.shape[0]},), "
                f"got {labels.shape}"
            )
        if data.shape[0] < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} training "
                f"records, got {data.shape[0]}"
            )
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self._labels = encoded
        self._index = _build_index(data, self.algorithm)
        return self

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predict a label for each query record."""
        votes = self._vote_counts(queries)
        winners = np.argmax(votes, axis=1)
        return self.classes_[winners]

    def predict_proba(self, queries: np.ndarray) -> np.ndarray:
        """Neighbour-vote label frequencies, shape ``(m, n_classes)``."""
        votes = self._vote_counts(queries)
        return votes / self.n_neighbors

    def score(self, queries: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = np.asarray(labels)
        predictions = self.predict(queries)
        return float(np.mean(predictions == labels))

    def _vote_counts(self, queries: np.ndarray) -> np.ndarray:
        if self._index is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        __, indices = self._index.query(queries, k=self.n_neighbors)
        indices = np.atleast_2d(indices)
        neighbour_labels = self._labels[indices]
        counts = np.zeros((queries.shape[0], self.classes_.shape[0]))
        for column in range(self.n_neighbors):
            np.add.at(
                counts,
                (np.arange(queries.shape[0]), neighbour_labels[:, column]),
                1.0,
            )
        return counts


class KNeighborsRegressor:
    """Neighbour-mean k-NN regressor.

    Used for the Abalone experiment: predict the (continuous) age and
    score with a within-tolerance accuracy, per the paper's protocol.
    """

    def __init__(self, n_neighbors: int = 1, algorithm: str = "brute"):
        if n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
        self.n_neighbors = int(n_neighbors)
        self.algorithm = algorithm
        self._index = None
        self._targets = None

    def fit(self, data: np.ndarray, targets: np.ndarray):
        """Index the training records and remember their targets."""
        data = np.asarray(data, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if targets.shape != (data.shape[0],):
            raise ValueError(
                f"targets must have shape ({data.shape[0]},), "
                f"got {targets.shape}"
            )
        if data.shape[0] < self.n_neighbors:
            raise ValueError(
                f"need at least n_neighbors={self.n_neighbors} training "
                f"records, got {data.shape[0]}"
            )
        self._targets = targets.copy()
        self._index = _build_index(data, self.algorithm)
        return self

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Predict the mean target of each query's neighbours."""
        if self._index is None:
            raise RuntimeError("regressor is not fitted; call fit() first")
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        __, indices = self._index.query(queries, k=self.n_neighbors)
        indices = np.atleast_2d(indices)
        return self._targets[indices].mean(axis=1)

    def score(
        self, queries: np.ndarray, targets: np.ndarray, tol: float = 1.0
    ) -> float:
        """Fraction of predictions within ``tol`` of the true target.

        This is the paper's Abalone metric ("percentage of the time that
        the age was predicted within an accuracy of less than one year").
        """
        targets = np.asarray(targets, dtype=float)
        predictions = self.predict(queries)
        return float(np.mean(np.abs(predictions - targets) <= tol))

"""Approximate nearest neighbours via random-projection LSH.

For very large data sets the exact indexes (brute force, k-d tree) can
be too slow per query; locality-sensitive hashing trades a little
recall for sub-linear candidate generation.  This is the classic
random-hyperplane scheme for Euclidean/cosine similarity: each table
hashes a record to the sign pattern of a handful of random projections,
queries probe their own bucket in every table, and the union of bucket
members is re-ranked exactly.

Recall against the exact index is measured, not assumed — see the test
suite and the contract below.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.linalg.rng import check_random_state
from repro.neighbors.brute import pairwise_distances
from repro.telemetry import DEFAULT_SIZE_BUCKETS


class LSHIndex:
    """Approximate k-NN with random-hyperplane hash tables.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` to index.  A copy is stored.
    n_tables:
        Number of independent hash tables; more tables raise recall at
        linear memory/query cost.
    n_bits:
        Hyperplanes per table (bucket key width); more bits mean
        smaller buckets — faster but lower recall.
    random_state:
        Seed or generator for the hyperplanes.
    """

    def __init__(self, points: np.ndarray, n_tables: int = 8,
                 n_bits: int = 8, random_state=None):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("cannot index an empty point set")
        if n_tables < 1:
            raise ValueError(f"n_tables must be >= 1, got {n_tables}")
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        self._points = points.copy()
        self.n_tables = int(n_tables)
        self.n_bits = int(n_bits)
        rng = check_random_state(random_state)
        # Hyperplanes pass through the data mean so sign bits split the
        # data rather than all landing on one side.
        self._centre = points.mean(axis=0)
        self._hyperplanes = rng.standard_normal(
            (self.n_tables, self.n_bits, points.shape[1])
        )
        self._tables: list[dict] = []
        centered = self._points - self._centre
        for table in range(self.n_tables):
            keys = self._hash(centered, table)
            buckets: dict = {}
            for index, key in enumerate(keys):
                buckets.setdefault(key, []).append(index)
            self._tables.append(buckets)

    @property
    def n_points(self) -> int:
        """Number of indexed records."""
        return self._points.shape[0]

    @property
    def n_features(self) -> int:
        """Dimensionality of the indexed records."""
        return self._points.shape[1]

    def _hash(self, centered: np.ndarray, table: int) -> np.ndarray:
        projections = centered @ self._hyperplanes[table].T
        bits = (projections >= 0).astype(np.uint64)
        weights = (1 << np.arange(self.n_bits, dtype=np.uint64))
        return bits @ weights

    def _candidates(self, query: np.ndarray) -> np.ndarray:
        centered = (query - self._centre)[None, :]
        found: set[int] = set()
        for table in range(self.n_tables):
            key = int(self._hash(centered, table)[0])
            found.update(self._tables[table].get(key, ()))
        return np.fromiter(found, dtype=np.int64, count=len(found))

    def query(self, queries: np.ndarray, k: int = 1):
        """Approximate ``k`` nearest neighbours per query.

        Same return contract as the exact indexes — but the neighbours
        are drawn from the hash candidates only.  When a query's
        candidate set is smaller than ``k`` it is topped up by a brute
        scan, so the result always has ``k`` entries (and degenerates
        gracefully to exact search on hostile data).
        """
        queries = np.asarray(queries, dtype=float)
        single = queries.ndim == 1
        queries = np.atleast_2d(queries)
        if queries.shape[1] != self.n_features:
            raise ValueError(
                "dimensionality mismatch: "
                f"{queries.shape[1]} vs {self.n_features}"
            )
        if not 1 <= k <= self.n_points:
            raise ValueError(f"k must be in [1, {self.n_points}], got {k}")
        telemetry.counter_inc(
            "neighbors.lsh.queries", queries.shape[0]
        )
        all_distances = np.empty((queries.shape[0], k))
        all_indices = np.empty((queries.shape[0], k), dtype=np.int64)
        for row, query in enumerate(queries):
            candidates = self._candidates(query)
            if candidates.shape[0] < k:
                telemetry.counter_inc("neighbors.lsh.fallbacks")
                candidates = np.arange(self.n_points)
            telemetry.histogram_observe(
                "neighbors.lsh.candidates", candidates.shape[0],
                buckets=DEFAULT_SIZE_BUCKETS,
            )
            distances = pairwise_distances(
                query[None, :], self._points[candidates], squared=True
            )[0]
            order = np.argsort(distances, kind="stable")[:k]
            all_indices[row] = candidates[order]
            all_distances[row] = np.sqrt(distances[order])
        if single:
            return all_distances[0], all_indices[0]
        return all_distances, all_indices

    def recall_at_k(self, queries: np.ndarray, k: int,
                    exact_indices: np.ndarray) -> float:
        """Fraction of exact neighbours the approximate query found."""
        __, approximate = self.query(queries, k=k)
        approximate = np.atleast_2d(approximate)
        exact_indices = np.atleast_2d(exact_indices)
        hits = 0
        for approx_row, exact_row in zip(approximate, exact_indices):
            hits += len(set(approx_row.tolist())
                        & set(exact_row.tolist()))
        return hits / exact_indices.size

"""A from-scratch k-d tree for exact nearest-neighbour search.

Median-split construction over the widest-spread dimension, array-based
node storage, and a best-first branch-and-bound query.  Exactness is
asserted against :class:`repro.neighbors.BruteForceIndex` in the test
suite, including on adversarial (duplicated / collinear) point sets.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro import telemetry
from repro.telemetry import DEFAULT_SIZE_BUCKETS

_LEAF = -1


class _Node:
    """Internal k-d tree node (leaf when ``axis == _LEAF``)."""

    __slots__ = ("axis", "threshold", "left", "right", "indices", "lo", "hi")

    def __init__(self, axis, threshold, left, right, indices, lo, hi):
        self.axis = axis
        self.threshold = threshold
        self.left = left
        self.right = right
        self.indices = indices
        self.lo = lo
        self.hi = hi


class KDTreeIndex:
    """Exact k-NN index backed by a k-d tree.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` to index.  A copy is stored.
    leaf_size:
        Maximum number of records per leaf; smaller leaves mean deeper
        trees and cheaper leaf scans.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = 16):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("cannot index an empty point set")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self._points = points.copy()
        self._leaf_size = int(leaf_size)
        all_indices = np.arange(points.shape[0])
        self._root = self._build(all_indices)

    @property
    def n_points(self) -> int:
        """Number of indexed records."""
        return self._points.shape[0]

    @property
    def n_features(self) -> int:
        """Dimensionality of the indexed records."""
        return self._points.shape[1]

    def _build(self, indices: np.ndarray) -> _Node:
        subset = self._points[indices]
        lo = subset.min(axis=0)
        hi = subset.max(axis=0)
        if indices.shape[0] <= self._leaf_size:
            return _Node(_LEAF, 0.0, None, None, indices, lo, hi)
        spreads = hi - lo
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0.0:
            # All points identical along every axis: keep as a leaf no
            # matter the count, a split could never separate them.
            return _Node(_LEAF, 0.0, None, None, indices, lo, hi)
        values = subset[:, axis]
        median = float(np.median(values))
        left_mask = values <= median
        # Guard against degenerate splits when many values equal the
        # median: move the boundary so both sides are non-empty.
        if left_mask.all():
            left_mask = values < median
            if not left_mask.any():
                return _Node(_LEAF, 0.0, None, None, indices, lo, hi)
        left = self._build(indices[left_mask])
        right = self._build(indices[~left_mask])
        return _Node(axis, median, left, right, None, lo, hi)

    @staticmethod
    def _box_distance(query: np.ndarray, node: _Node) -> float:
        """Squared distance from ``query`` to the node's bounding box."""
        below = np.clip(node.lo - query, 0.0, None)
        above = np.clip(query - node.hi, 0.0, None)
        return float(below @ below + above @ above)

    def _query_single(self, query: np.ndarray, k: int, mask=None):
        # Max-heap of the current k best as (-squared_distance, index).
        best: list[tuple[float, int]] = []
        # Candidate accounting for telemetry: leaf points actually
        # distance-checked by this query.
        scanned = 0
        # Min-heap frontier of (box_distance, tiebreak, node).
        counter = 0
        frontier = [(self._box_distance(query, self._root), 0, self._root)]
        while frontier:
            box_distance, __, node = heapq.heappop(frontier)
            if len(best) == k and box_distance >= -best[0][0]:
                break
            if node.axis == _LEAF:
                indices = node.indices
                if mask is not None:
                    indices = indices[mask[indices]]
                    if not indices.shape[0]:
                        continue
                scanned += indices.shape[0]
                diffs = self._points[indices] - query
                squared = np.einsum("ij,ij->i", diffs, diffs)
                for distance, index in zip(squared, indices):
                    if len(best) < k:
                        heapq.heappush(best, (-distance, -int(index)))
                    elif distance < -best[0][0]:
                        heapq.heapreplace(best, (-distance, -int(index)))
                continue
            for child in (node.left, node.right):
                child_distance = self._box_distance(query, child)
                if len(best) < k or child_distance < -best[0][0]:
                    counter += 1
                    heapq.heappush(frontier, (child_distance, counter, child))
        ordered = sorted((-d, -i) for d, i in best)
        distances = np.sqrt(np.array([d for d, __ in ordered]))
        indices = np.array([i for __, i in ordered], dtype=np.int64)
        return distances, indices, scanned

    def query(self, queries: np.ndarray, k: int = 1, mask=None):
        """Find the ``k`` nearest indexed records for each query.

        Same contract as :meth:`BruteForceIndex.query`: returns
        ``(distances, indices)`` with ascending distances per row.  Ties
        are broken by preferring the lower index, so results are
        deterministic.

        Parameters
        ----------
        queries:
            One query (shape ``(d,)``) or many (shape ``(m, d)``).
        k:
            Number of neighbours per query.
        mask:
            Optional boolean array of shape ``(n_points,)`` restricting
            the search to records where it is true.  Box pruning stays
            valid (masking only removes candidates), so results match a
            brute-force scan over the masked subset.
        """
        queries = np.asarray(queries, dtype=float)
        single = queries.ndim == 1
        queries = np.atleast_2d(queries)
        if queries.shape[1] != self.n_features:
            raise ValueError(
                "dimensionality mismatch: "
                f"{queries.shape[1]} vs {self.n_features}"
            )
        eligible = self.n_points
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self.n_points,):
                raise ValueError(
                    f"mask must have shape ({self.n_points},), "
                    f"got {mask.shape}"
                )
            eligible = int(mask.sum())
        if not 1 <= k <= eligible:
            raise ValueError(f"k must be in [1, {eligible}], got {k}")
        telemetry.counter_inc(
            "neighbors.kdtree.queries", queries.shape[0]
        )
        all_distances = np.empty((queries.shape[0], k))
        all_indices = np.empty((queries.shape[0], k), dtype=np.int64)
        for row, query in enumerate(queries):
            distances, indices, scanned = self._query_single(
                query, k, mask=mask
            )
            all_distances[row] = distances
            all_indices[row] = indices
            telemetry.histogram_observe(
                "neighbors.kdtree.candidates", scanned,
                buckets=DEFAULT_SIZE_BUCKETS,
            )
        if single:
            return all_distances[0], all_indices[0]
        return all_distances, all_indices

    def query_radius(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all records within ``radius`` of a single query.

        Branch-and-bound over the tree's bounding boxes; results are
        returned in ascending index order (matching the brute-force
        index up to ordering).
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        query = np.asarray(query, dtype=float)
        if query.shape != (self.n_features,):
            raise ValueError(
                f"query must have shape ({self.n_features},), "
                f"got {query.shape}"
            )
        squared_radius = radius * radius
        hits: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self._box_distance(query, node) > squared_radius:
                continue
            if node.axis == _LEAF:
                diffs = self._points[node.indices] - query
                squared = np.einsum("ij,ij->i", diffs, diffs)
                hits.extend(
                    int(index)
                    for index in node.indices[squared <= squared_radius]
                )
                continue
            stack.append(node.left)
            stack.append(node.right)
        return np.array(sorted(hits), dtype=np.int64)

"""Maintained nearest-centroid index for streaming condensation.

The dynamic maintainer (Fig. 2) routes every arriving record to the
group with the nearest centroid.  A brute scan is ``O(G)`` per record;
once the group population grows, a k-d tree answers the same query in
``O(log G)`` — but the centroid set *churns*: ingestion nudges one
centroid per absorb, splits append groups, and merges renumber them.

:class:`CentroidIndex` resolves the tension with a snapshot-plus-overlay
scheme:

* the k-d tree indexes a *snapshot* of the centroids;
* centroids that moved since the snapshot are tracked in a dirty set
  and excluded from tree queries via the index's ``mask`` support;
* groups appended after the snapshot are not in the tree at all;
* a query combines the tree's best *clean* candidate with a brute scan
  over the dirty and appended centroids, comparing all finalists with
  :func:`repro.neighbors.brute.pairwise_distances` and breaking ties
  toward the lowest group id — the same contract as the brute scan;
* once the overlay outgrows the staleness threshold the tree is rebuilt
  lazily, on the next query.  Structural renumbering (a merge popping a
  group) invalidates the snapshot outright, since every later group id
  shifts.

Below ``min_index_size`` groups the tree is not worth its bookkeeping
and the index degrades to the plain brute scan.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.neighbors.brute import pairwise_distances
from repro.neighbors.kdtree import KDTreeIndex


class CentroidIndex:
    """Lazily rebuilt k-d tree over a mutating set of group centroids.

    Parameters
    ----------
    min_index_size:
        Centroid count below which queries use the brute scan and no
        tree is kept.
    staleness:
        Fraction of the centroid population the dirty-plus-appended
        overlay may reach before the next query rebuilds the tree
        (floored at ``min_stale`` absolute entries).
    min_stale:
        Absolute overlay floor under which a rebuild is never forced.
    leaf_size:
        Passed through to :class:`repro.neighbors.kdtree.KDTreeIndex`.
    """

    def __init__(self, min_index_size: int = 64, staleness: float = 0.25,
                 min_stale: int = 8, leaf_size: int = 16):
        if min_index_size < 2:
            raise ValueError(
                f"min_index_size must be >= 2, got {min_index_size}"
            )
        if not 0.0 < staleness <= 1.0:
            raise ValueError(
                f"staleness must be in (0, 1], got {staleness}"
            )
        self._min_index_size = int(min_index_size)
        self._staleness = float(staleness)
        self._min_stale = int(min_stale)
        self._leaf_size = int(leaf_size)
        self._tree: KDTreeIndex | None = None
        self._snapshot_size = 0
        self._dirty: set[int] = set()

    # ------------------------------------------------------------------
    # Maintenance hooks
    # ------------------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the snapshot: group ids were renumbered (merge/pop)."""
        self._tree = None
        self._snapshot_size = 0
        self._dirty.clear()

    def mark_dirty(self, target: int) -> None:
        """Record that centroid ``target`` moved since the snapshot."""
        if self._tree is not None and target < self._snapshot_size:
            self._dirty.add(int(target))

    @property
    def indexed(self) -> bool:
        """Whether a tree snapshot currently backs queries."""
        return self._tree is not None

    @property
    def overlay_size(self) -> int:
        """Dirty centroids tracked against the current snapshot."""
        return len(self._dirty)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def nearest(self, record: np.ndarray, centroids: np.ndarray) -> int:
        """Index of the centroid nearest to ``record``.

        Exactly the brute contract: the argmin of squared Euclidean
        distance over ``centroids``, lowest index on ties.

        Parameters
        ----------
        record:
            Query vector, shape ``(d,)``.
        centroids:
            The *current* centroid matrix, shape ``(G, d)``; rows with
            ids at or past the snapshot size are treated as appended.
        """
        n = centroids.shape[0]
        if n < self._min_index_size:
            if self._tree is not None:
                self.invalidate()
            return self._brute(record, centroids)
        if self._tree is None or self._stale(n):
            self._rebuild(centroids)
        overlay = len(self._dirty) + (n - self._snapshot_size)
        if overlay == 0:
            __, indices = self._tree.query(record, k=1)
            return int(indices[0])
        clean = np.ones(self._snapshot_size, dtype=bool)
        if self._dirty:
            clean[np.fromiter(self._dirty, dtype=np.int64)] = False
        candidates = sorted(self._dirty)
        candidates.extend(range(self._snapshot_size, n))
        if clean.any():
            __, indices = self._tree.query(record, k=1, mask=clean)
            candidates.append(int(indices[0]))
            candidates.sort()
        finalists = np.asarray(candidates, dtype=np.int64)
        distances = pairwise_distances(
            record[None, :], centroids[finalists], squared=True
        )[0]
        return int(finalists[int(np.argmin(distances))])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _stale(self, n: int) -> bool:
        if n < self._snapshot_size:
            # Centroids disappeared without an invalidate() — ids are
            # unreliable; force a rebuild.
            return True
        overlay = len(self._dirty) + (n - self._snapshot_size)
        threshold = max(self._min_stale, int(self._staleness * n))
        if overlay > threshold:
            return True
        # Every snapshot entry dirty: the tree answers nothing.
        return len(self._dirty) >= self._snapshot_size

    def _rebuild(self, centroids: np.ndarray) -> None:
        self._tree = KDTreeIndex(centroids, leaf_size=self._leaf_size)
        self._snapshot_size = centroids.shape[0]
        self._dirty.clear()
        telemetry.counter_inc("ingest.index_rebuilds")
        telemetry.gauge_set("ingest.index_size", self._snapshot_size)

    @staticmethod
    def _brute(record: np.ndarray, centroids: np.ndarray) -> int:
        distances = pairwise_distances(
            record[None, :], centroids, squared=True
        )[0]
        return int(np.argmin(distances))

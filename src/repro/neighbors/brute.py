"""Exact nearest-neighbour search by brute force.

Distances are squared Euclidean internally (monotone in the Euclidean
distance, so orderings agree) and converted on output.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.telemetry import DEFAULT_SIZE_BUCKETS


def pairwise_distances(
    queries: np.ndarray, points: np.ndarray, squared: bool = False
) -> np.ndarray:
    """Euclidean distances between two record sets.

    Parameters
    ----------
    queries:
        Array of shape ``(m, d)``.
    points:
        Array of shape ``(n, d)``.
    squared:
        Return squared distances (cheaper; same ordering).

    Returns
    -------
    numpy.ndarray, shape (m, n)
        ``out[i, j]`` is the distance between ``queries[i]`` and
        ``points[j]``.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=float))
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if queries.shape[1] != points.shape[1]:
        raise ValueError(
            "dimensionality mismatch: "
            f"{queries.shape[1]} vs {points.shape[1]}"
        )
    # ||q - p||^2 = ||q||^2 - 2 q·p + ||p||^2, clipped against round-off.
    q_norms = np.einsum("ij,ij->i", queries, queries)[:, None]
    p_norms = np.einsum("ij,ij->i", points, points)[None, :]
    squared_distances = q_norms - 2.0 * queries @ points.T + p_norms
    np.clip(squared_distances, 0.0, None, out=squared_distances)
    if squared:
        return squared_distances
    return np.sqrt(squared_distances)


class BruteForceIndex:
    """Exact k-NN index backed by full pairwise distance computation.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)`` to index.  A copy is stored.
    """

    def __init__(self, points: np.ndarray):
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("cannot index an empty point set")
        self._points = points.copy()

    @property
    def n_points(self) -> int:
        """Number of indexed records."""
        return self._points.shape[0]

    @property
    def n_features(self) -> int:
        """Dimensionality of the indexed records."""
        return self._points.shape[1]

    @property
    def points(self) -> np.ndarray:
        """Read-only view of the indexed records."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    def query(self, queries: np.ndarray, k: int = 1):
        """Find the ``k`` nearest indexed records for each query.

        Parameters
        ----------
        queries:
            Array of shape ``(m, d)`` or a single record of shape
            ``(d,)``.
        k:
            Number of neighbours, ``1 <= k <= n_points``.

        Returns
        -------
        distances : numpy.ndarray, shape (m, k)
            Euclidean distances, ascending within each row.
        indices : numpy.ndarray, shape (m, k)
            Positions of the neighbours in the indexed array.
        """
        queries = np.asarray(queries, dtype=float)
        single = queries.ndim == 1
        queries = np.atleast_2d(queries)
        if not 1 <= k <= self.n_points:
            raise ValueError(
                f"k must be in [1, {self.n_points}], got {k}"
            )
        telemetry.counter_inc(
            "neighbors.brute.queries", queries.shape[0]
        )
        # A brute query scans every indexed point: each query's
        # candidate set is the whole index.
        for __ in range(queries.shape[0]):
            telemetry.histogram_observe(
                "neighbors.brute.candidates", self.n_points,
                buckets=DEFAULT_SIZE_BUCKETS,
            )
        squared = pairwise_distances(queries, self._points, squared=True)
        if k < self.n_points:
            part = np.argpartition(squared, k - 1, axis=1)[:, :k]
        else:
            part = np.broadcast_to(
                np.arange(self.n_points), (queries.shape[0], self.n_points)
            ).copy()
        part_distances = np.take_along_axis(squared, part, axis=1)
        order = np.argsort(part_distances, axis=1, kind="stable")
        indices = np.take_along_axis(part, order, axis=1)
        distances = np.sqrt(np.take_along_axis(part_distances, order, axis=1))
        if single:
            return distances[0], indices[0]
        return distances, indices

    def query_radius(self, query: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all records within ``radius`` of a single query."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        query = np.asarray(query, dtype=float).reshape(1, -1)
        distances = pairwise_distances(query, self._points)[0]
        return np.flatnonzero(distances <= radius)

"""Nearest-neighbour search structures and k-NN estimators.

The condensation algorithm's inner loop is a k-nearest-neighbour query
(static grouping absorbs the ``k-1`` closest records to each seed, the
dynamic maintainer routes stream points to the nearest centroid) and the
paper's downstream mining example is a nearest-neighbour classifier — so
this package is both a substrate of the core algorithm and a mining
algorithm in its own right.

* :class:`BruteForceIndex` — exact search by full distance computation.
* :class:`KDTreeIndex` — exact search via a from-scratch k-d tree,
  asymptotically faster in low-to-moderate dimension.
* :class:`CentroidIndex` — a lazily rebuilt k-d tree over the *mutating*
  centroid set of the dynamic maintainer (snapshot plus dirty overlay).
* :class:`KNeighborsClassifier` / :class:`KNeighborsRegressor` — the
  estimators used in the paper's evaluation (simple NN classification and
  the Abalone within-one-year age prediction).
"""

from repro.neighbors.brute import BruteForceIndex, pairwise_distances
from repro.neighbors.centroids import CentroidIndex
from repro.neighbors.kdtree import KDTreeIndex
from repro.neighbors.knn import KNeighborsClassifier, KNeighborsRegressor
from repro.neighbors.lsh import LSHIndex

__all__ = [
    "BruteForceIndex",
    "CentroidIndex",
    "KDTreeIndex",
    "LSHIndex",
    "KNeighborsClassifier",
    "KNeighborsRegressor",
    "pairwise_distances",
]

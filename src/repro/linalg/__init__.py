"""Low-level linear-algebra and numerical substrates.

This package provides the numerical building blocks the condensation
algorithms rest on:

* :mod:`repro.linalg.rng` — uniform handling of seeds and generators so
  every stochastic step in the library is reproducible.
* :mod:`repro.linalg.symmetric` — symmetric/PSD eigendecomposition helpers
  used to derive the per-group orthonormal axis systems of the paper.
* :mod:`repro.linalg.accumulators` — streaming moment accumulators: the
  raw-sum accumulator mandated by the paper (first-order sums ``Fs`` and
  second-order sums ``Sc``) and a numerically robust Welford accumulator
  used as a cross-check in tests.
* :mod:`repro.linalg.updates` — rank-one eigendecomposition updates
  (secular-equation solve) so hot paths can advance a known eigensystem
  across an absorbed record instead of redecomposing, with a tolerance
  gate that falls back to the exact path.
"""

from repro.linalg.accumulators import MomentAccumulator, WelfordAccumulator
from repro.linalg.rng import (
    check_random_state,
    derive_seed,
    restore_rng_state,
    rng_from_seed_sequence,
    rng_from_state,
    rng_state,
    spawn_rngs,
    spawn_seed_sequences,
)
from repro.linalg.symmetric import (
    covariance_from_sums,
    is_positive_semidefinite,
    nearest_psd,
    sorted_eigh,
    symmetrize,
)
from repro.linalg.updates import (
    EigenUpdateError,
    absorbed_record_eigh_update,
    rank_one_eigh_update,
)

__all__ = [
    "MomentAccumulator",
    "WelfordAccumulator",
    "check_random_state",
    "derive_seed",
    "restore_rng_state",
    "rng_from_seed_sequence",
    "rng_from_state",
    "rng_state",
    "spawn_rngs",
    "spawn_seed_sequences",
    "covariance_from_sums",
    "is_positive_semidefinite",
    "nearest_psd",
    "sorted_eigh",
    "symmetrize",
    "EigenUpdateError",
    "absorbed_record_eigh_update",
    "rank_one_eigh_update",
]

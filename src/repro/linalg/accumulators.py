"""Streaming moment accumulators.

Two implementations of the same contract — ingest records one (or many)
at a time and expose the running mean and population covariance:

* :class:`MomentAccumulator` keeps the paper's raw sums: the first-order
  sums ``Fs`` and second-order product sums ``Sc``.  This is the exact
  representation a condensed group stores, so the core package builds on
  it directly.
* :class:`WelfordAccumulator` keeps a numerically stable mean/co-moment
  pair (Welford/Chan update).  It exists as an oracle: tests compare the
  two to quantify cancellation error in the raw-sum representation.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.symmetric import covariance_from_sums, symmetrize


class MomentAccumulator:
    """Raw-sum accumulator of first and second order moments.

    Maintains exactly the per-group state of the paper (§2): the vector of
    attribute sums ``Fs``, the matrix of pairwise product sums ``Sc`` and
    the record count ``n``.

    Parameters
    ----------
    n_features:
        Dimensionality ``d`` of the records.
    """

    def __init__(self, n_features: int):
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        self.n_features = int(n_features)
        self.first_order = np.zeros(self.n_features)
        self.second_order = np.zeros((self.n_features, self.n_features))
        self.count = 0

    def add(self, record: np.ndarray) -> None:
        """Ingest a single record of shape ``(d,)``."""
        record = self._validate_record(record)
        self.first_order += record
        self.second_order += np.outer(record, record)
        self.count += 1

    def add_batch(self, records: np.ndarray) -> None:
        """Ingest a batch of records of shape ``(m, d)``."""
        records = np.asarray(records, dtype=float)
        if records.ndim != 2 or records.shape[1] != self.n_features:
            raise ValueError(
                f"expected shape (m, {self.n_features}), got {records.shape}"
            )
        if records.shape[0] == 0:
            return
        self.first_order += records.sum(axis=0)
        self.second_order += records.T @ records
        self.count += records.shape[0]

    def remove(self, record: np.ndarray) -> None:
        """Remove a previously ingested record (downdate)."""
        record = self._validate_record(record)
        if self.count <= 0:
            raise ValueError("cannot remove from an empty accumulator")
        self.first_order -= record
        self.second_order -= np.outer(record, record)
        self.count -= 1

    def merge(self, other: "MomentAccumulator") -> None:
        """Fold another accumulator's sums into this one."""
        if other.n_features != self.n_features:
            raise ValueError(
                "cannot merge accumulators of different dimensionality: "
                f"{self.n_features} vs {other.n_features}"
            )
        self.first_order += other.first_order
        self.second_order += other.second_order
        self.count += other.count

    @property
    def mean(self) -> np.ndarray:
        """Running mean (Observation 1).  Raises on an empty accumulator."""
        if self.count == 0:
            raise ValueError("mean of an empty accumulator is undefined")
        return self.first_order / self.count

    @property
    def covariance(self) -> np.ndarray:
        """Running population covariance (Observation 2)."""
        return covariance_from_sums(
            self.first_order, self.second_order, self.count
        )

    def copy(self) -> "MomentAccumulator":
        """Deep copy of the accumulator state."""
        clone = MomentAccumulator(self.n_features)
        clone.first_order = self.first_order.copy()
        clone.second_order = self.second_order.copy()
        clone.count = self.count
        return clone

    def _validate_record(self, record: np.ndarray) -> np.ndarray:
        record = np.asarray(record, dtype=float)
        if record.shape != (self.n_features,):
            raise ValueError(
                f"expected shape ({self.n_features},), got {record.shape}"
            )
        return record

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"MomentAccumulator(n_features={self.n_features}, "
            f"count={self.count})"
        )


class WelfordAccumulator:
    """Numerically stable streaming mean / covariance (Welford-Chan).

    Keeps the running mean and the co-moment matrix
    ``M2 = Σ (x − mean)(x − mean)ᵀ`` so the population covariance is
    ``M2 / n`` without the catastrophic cancellation the raw-sum form can
    suffer when ``|mean| >> stddev``.
    """

    def __init__(self, n_features: int):
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        self.n_features = int(n_features)
        self._mean = np.zeros(self.n_features)
        self._co_moment = np.zeros((self.n_features, self.n_features))
        self.count = 0

    def add(self, record: np.ndarray) -> None:
        """Ingest a single record of shape ``(d,)``."""
        record = np.asarray(record, dtype=float)
        if record.shape != (self.n_features,):
            raise ValueError(
                f"expected shape ({self.n_features},), got {record.shape}"
            )
        self.count += 1
        delta = record - self._mean
        self._mean += delta / self.count
        delta_after = record - self._mean
        self._co_moment += np.outer(delta, delta_after)

    def add_batch(self, records: np.ndarray) -> None:
        """Ingest a batch by folding in its own moments (Chan's formula)."""
        records = np.asarray(records, dtype=float)
        if records.ndim != 2 or records.shape[1] != self.n_features:
            raise ValueError(
                f"expected shape (m, {self.n_features}), got {records.shape}"
            )
        m = records.shape[0]
        if m == 0:
            return
        batch_mean = records.mean(axis=0)
        centered = records - batch_mean
        batch_co_moment = centered.T @ centered
        if self.count == 0:
            self._mean = batch_mean
            self._co_moment = batch_co_moment
            self.count = m
            return
        delta = batch_mean - self._mean
        total = self.count + m
        self._co_moment += batch_co_moment + np.outer(delta, delta) * (
            self.count * m / total
        )
        self._mean += delta * (m / total)
        self.count = total

    @property
    def mean(self) -> np.ndarray:
        """Running mean.  Raises on an empty accumulator."""
        if self.count == 0:
            raise ValueError("mean of an empty accumulator is undefined")
        return self._mean.copy()

    @property
    def covariance(self) -> np.ndarray:
        """Running population covariance."""
        if self.count == 0:
            raise ValueError("covariance of an empty accumulator is undefined")
        return symmetrize(self._co_moment / self.count)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"WelfordAccumulator(n_features={self.n_features}, "
            f"count={self.count})"
        )

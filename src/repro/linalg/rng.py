"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``random_state``
argument that may be ``None``, an integer seed, or a fully constructed
:class:`numpy.random.Generator`.  Normalizing that argument in one place
keeps experiments reproducible and avoids the classic bug of re-seeding a
fresh generator inside a loop.

This module is the library's RNG authority: it is the only module
allowed to construct generators (enforced by the RNG-001 rule of
``repro.analysis``); everything else threads a ``random_state`` through
:func:`check_random_state` or :func:`spawn_rngs`.
"""

from __future__ import annotations

from typing import Iterable, TypeAlias, Union

import numpy as np

RandomState: TypeAlias = Union[None, int, np.random.Generator]
"""Accepted forms of the ``random_state`` argument.

``None`` for a non-deterministic generator, an ``int`` seed for a
reproducible one, or an existing :class:`numpy.random.Generator` to
thread one generator through many components.
"""


def check_random_state(random_state: RandomState = None) -> np.random.Generator:
    """Normalize ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for a non-deterministic generator, an ``int`` seed, or an
        existing :class:`numpy.random.Generator` (returned unchanged so a
        caller can thread one generator through many components).

    Returns
    -------
    numpy.random.Generator

    Raises
    ------
    TypeError
        If ``random_state`` is not one of the accepted types.
    ValueError
        If ``random_state`` is a negative integer seed.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError(f"seed must be non-negative, got {random_state}")
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed, or a numpy Generator; "
        f"got {type(random_state).__name__}"
    )


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit seed from ``rng``.

    Useful to hand independent, reproducible seeds to subcomponents
    without sharing a generator across them.

    Parameters
    ----------
    rng:
        Source generator to draw the seed from.

    Returns
    -------
    int
        A seed uniform over ``[0, 2**63 - 1)``.
    """
    return int(rng.integers(0, 2**63 - 1))


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from one seed.

    Parameters
    ----------
    random_state:
        Anything accepted by :func:`check_random_state`.
    count:
        Number of generators to create.

    Returns
    -------
    list of numpy.random.Generator
        Statistically independent generators; reproducible when
        ``random_state`` is a seed.

    Raises
    ------
    ValueError
        If ``count`` is negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = check_random_state(random_state)
    return [np.random.default_rng(derive_seed(parent)) for _ in range(count)]


def spawn_seed_sequences(
    random_state: RandomState, count: int
) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent seed sequences from one seed.

    This is the determinism contract of the sharded condensation
    engine: a root :class:`numpy.random.SeedSequence` is derived from
    ``random_state`` once, then ``spawn`` produces one child sequence
    per shard.  The children depend only on the root seed and the
    shard *count* — never on how many workers consume them or in what
    order — so a sharded run is reproducible for a fixed shard count
    under any parallelism.  Seed sequences are picklable, so they can
    be shipped to worker processes and turned into generators there
    via :func:`rng_from_seed_sequence`.

    Parameters
    ----------
    random_state:
        Anything accepted by :func:`check_random_state`.
    count:
        Number of child sequences to spawn.

    Returns
    -------
    list of numpy.random.SeedSequence
        Statistically independent child sequences; reproducible when
        ``random_state`` is a seed.

    Raises
    ------
    ValueError
        If ``count`` is negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = check_random_state(random_state)
    root = np.random.SeedSequence(derive_seed(parent))
    return root.spawn(count)


def rng_from_seed_sequence(
    sequence: np.random.SeedSequence,
) -> np.random.Generator:
    """Construct a generator from a spawned seed sequence.

    The counterpart of :func:`spawn_seed_sequences` for worker
    processes: generator construction stays inside this module (the
    RNG-001 discipline) while the picklable sequence crosses the
    process boundary.

    Parameters
    ----------
    sequence:
        A seed sequence, typically from :func:`spawn_seed_sequences`.

    Returns
    -------
    numpy.random.Generator

    Raises
    ------
    TypeError
        If ``sequence`` is not a :class:`numpy.random.SeedSequence`.
    """
    if not isinstance(sequence, np.random.SeedSequence):
        raise TypeError(
            "sequence must be a numpy.random.SeedSequence, got "
            f"{type(sequence).__name__}"
        )
    return np.random.default_rng(sequence)


def rng_state(rng: np.random.Generator) -> dict:
    """Capture a generator's exact position as a JSON-safe dict.

    The returned mapping is the bit generator's full state — enough to
    reconstruct a generator that produces the identical draw sequence
    via :func:`rng_from_state` (or to rewind an existing generator via
    :func:`restore_rng_state`).  This is the durability subsystem's
    hook: checkpoints persist the RNG position so recovery is
    bit-identical for every stochastic step after the crash.

    Parameters
    ----------
    rng:
        Generator whose position to capture.

    Returns
    -------
    dict
        ``{"bit_generator": <name>, "state": <nested state dict>}`` —
        plain ints/strings/dicts, round-trippable through JSON.

    Raises
    ------
    TypeError
        If ``rng`` is not a :class:`numpy.random.Generator`.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            f"rng must be a numpy Generator, got {type(rng).__name__}"
        )
    return dict(rng.bit_generator.state)


def restore_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Rewind ``rng`` in place to a position captured by :func:`rng_state`.

    Restoring in place (rather than constructing a new generator) keeps
    every component that shares the generator object — a condenser and
    the maintainer it owns, for example — pointing at the restored
    stream.

    Parameters
    ----------
    rng:
        Generator to rewind.
    state:
        A state mapping from :func:`rng_state` (possibly after a JSON
        round trip).

    Raises
    ------
    TypeError
        If ``rng`` is not a Generator or ``state`` is not a mapping.
    ValueError
        If ``state`` describes a different bit-generator type than
        ``rng`` uses.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError(
            f"rng must be a numpy Generator, got {type(rng).__name__}"
        )
    if not isinstance(state, dict):
        raise TypeError(
            f"state must be a dict from rng_state(), got "
            f"{type(state).__name__}"
        )
    expected = type(rng.bit_generator).__name__
    found = state.get("bit_generator")
    if found != expected:
        raise ValueError(
            f"state was captured from a {found!r} bit generator, but "
            f"this generator uses {expected!r}"
        )
    rng.bit_generator.state = state


def rng_from_state(state: dict) -> np.random.Generator:
    """Construct a generator positioned at a captured state.

    The counterpart of :func:`rng_state` for recovery paths that do not
    hold a live generator: construction stays inside this module (the
    RNG-001 discipline) and the restored generator reproduces the
    original's remaining draw sequence bit for bit.

    Parameters
    ----------
    state:
        A state mapping from :func:`rng_state` (possibly after a JSON
        round trip).

    Returns
    -------
    numpy.random.Generator

    Raises
    ------
    TypeError
        If ``state`` is not a mapping.
    ValueError
        If ``state`` names a bit generator other than the default
        (``PCG64``), which is the only kind this library constructs.
    """
    if not isinstance(state, dict):
        raise TypeError(
            f"state must be a dict from rng_state(), got "
            f"{type(state).__name__}"
        )
    rng = np.random.default_rng()
    restore_rng_state(rng, state)
    return rng


def permutation(rng: np.random.Generator, n: int) -> np.ndarray:
    """Return a random permutation of ``range(n)`` as an int64 array.

    Parameters
    ----------
    rng:
        Generator to draw from.
    n:
        Size of the permutation.

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)`` permutation of ``0..n-1``.

    Raises
    ------
    ValueError
        If ``n`` is negative.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return rng.permutation(n)


def sample_without_replacement(
    rng: np.random.Generator, population: int, size: int
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``.

    Parameters
    ----------
    rng:
        Generator to draw from.
    population:
        Size of the index range sampled from.
    size:
        Number of distinct indices to draw.

    Returns
    -------
    numpy.ndarray
        Shape ``(size,)`` array of distinct indices.

    Raises
    ------
    ValueError
        If ``size`` exceeds ``population``.
    """
    if size > population:
        raise ValueError(
            f"cannot sample {size} items from a population of {population}"
        )
    return rng.choice(population, size=size, replace=False)


def bootstrap_indices(
    rng: np.random.Generator, n: int, size: int | None = None
) -> np.ndarray:
    """Sample ``size`` indices from ``range(n)`` with replacement.

    Parameters
    ----------
    rng:
        Generator to draw from.
    n:
        Size of the index range sampled from.
    size:
        Number of draws; defaults to ``n`` (a classic bootstrap).

    Returns
    -------
    numpy.ndarray
        Shape ``(size,)`` array of indices, possibly repeated.

    Raises
    ------
    ValueError
        If ``n`` is not positive.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if size is None:
        size = n
    return rng.integers(0, n, size=size)


def seeds_for(labels: Iterable[str], random_state: RandomState) -> dict[str, int]:
    """Derive one named seed per label, reproducibly.

    Handy when an experiment wants per-dataset or per-trial seeds that do
    not interact: ``seeds_for(["ionosphere", "ecoli"], 7)``.

    Parameters
    ----------
    labels:
        Names to derive seeds for, in order.
    random_state:
        Anything accepted by :func:`check_random_state`.

    Returns
    -------
    dict of str to int
        One independent seed per label; reproducible when
        ``random_state`` is a seed.
    """
    parent = check_random_state(random_state)
    return {label: derive_seed(parent) for label in labels}

"""Symmetric-matrix helpers used throughout the condensation pipeline.

The paper derives, for every condensed group, the eigendecomposition
``C = P Λ Pᵀ`` of the group covariance matrix (Equation 1).  Group
covariances computed from raw sums can pick up tiny asymmetries and
negative eigenvalues from floating-point cancellation, especially for
groups whose size is at or below the data dimensionality.  The helpers
here centralize the symmetrization / clipping policy so the rest of the
library can assume clean, PSD inputs.
"""

from __future__ import annotations

import numpy as np

#: Relative tolerance used when clipping slightly negative eigenvalues.
EIGENVALUE_CLIP_RTOL = 1e-10


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(A + Aᵀ) / 2`` of a square matrix.

    Parameters
    ----------
    matrix:
        Square matrix, shape ``(d, d)``.

    Returns
    -------
    numpy.ndarray, shape (d, d)
        The symmetric part of ``matrix``.

    Raises
    ------
    ValueError
        If ``matrix`` is not square.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    return (matrix + matrix.T) / 2.0


def sorted_eigh(matrix: np.ndarray, clip: bool = True):
    """Eigendecompose a symmetric matrix, eigenvalues in decreasing order.

    This is the decomposition the paper uses both for anonymized-data
    generation (§2.1) and for the dynamic split (Fig. 3), where the
    *largest* eigenvalue's eigenvector is the split axis — hence the
    decreasing order convention.

    Parameters
    ----------
    matrix:
        Square symmetric matrix (symmetrized defensively before the
        decomposition).
    clip:
        When true (default), eigenvalues that are negative by no more than
        a small tolerance relative to the largest eigenvalue are clipped
        to zero, matching the paper's positive-semidefinite assumption.
        Genuinely negative eigenvalues (beyond tolerance) raise.

    Returns
    -------
    eigenvalues : numpy.ndarray, shape (d,)
        Decreasing, non-negative when ``clip`` is true.
    eigenvectors : numpy.ndarray, shape (d, d)
        Column ``i`` is the eigenvector for ``eigenvalues[i]``; the
        columns form an orthonormal basis.

    Raises
    ------
    ValueError
        If the matrix has a significantly negative eigenvalue and
        ``clip`` is true.
    """
    sym = symmetrize(matrix)
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    order = np.argsort(eigenvalues)[::-1]
    eigenvalues = eigenvalues[order]
    eigenvectors = eigenvectors[:, order]
    if clip:
        scale = max(abs(float(eigenvalues[0])), 1.0)
        tolerance = EIGENVALUE_CLIP_RTOL * scale
        if eigenvalues[-1] < -tolerance * 1e4:
            raise ValueError(
                "matrix is not positive semidefinite: smallest eigenvalue "
                f"{eigenvalues[-1]:.3e} (tolerance {-tolerance * 1e4:.3e})"
            )
        eigenvalues = np.clip(eigenvalues, 0.0, None)
    return eigenvalues, eigenvectors


def is_positive_semidefinite(matrix: np.ndarray, rtol: float = 1e-8) -> bool:
    """Check PSD-ness of a symmetric matrix up to a relative tolerance.

    Parameters
    ----------
    matrix:
        Square symmetric matrix (symmetrized defensively).
    rtol:
        Relative tolerance: eigenvalues down to ``-rtol * scale`` still
        count as non-negative, where ``scale`` is the largest absolute
        eigenvalue (floored at 1).

    Returns
    -------
    bool
        Whether all eigenvalues clear the tolerance.
    """
    sym = symmetrize(matrix)
    eigenvalues = np.linalg.eigvalsh(sym)
    scale = max(abs(float(eigenvalues[-1])), 1.0)
    return bool(eigenvalues[0] >= -rtol * scale)


def nearest_psd(matrix: np.ndarray) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone.

    Clips negative eigenvalues at zero and reassembles.  Used when
    reconstructing covariance matrices from independently rounded sums.

    Parameters
    ----------
    matrix:
        Square symmetric matrix, shape ``(d, d)``.

    Returns
    -------
    numpy.ndarray, shape (d, d)
        The nearest (in Frobenius norm) positive-semidefinite matrix.
    """
    eigenvalues, eigenvectors = sorted_eigh(matrix, clip=False)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return symmetrize((eigenvectors * eigenvalues) @ eigenvectors.T)


def covariance_from_sums(
    first_order: np.ndarray, second_order: np.ndarray, count: float
) -> np.ndarray:
    """Covariance matrix from raw sums (the paper's Observation 2).

    ``Cov_ij = Sc_ij / n − Fs_i · Fs_j / n²`` — the population covariance
    of the group, derivable from exactly the statistics a condensed group
    stores.

    Parameters
    ----------
    first_order:
        Vector of per-attribute sums ``Fs``, shape ``(d,)``.
    second_order:
        Matrix of pairwise product sums ``Sc``, shape ``(d, d)``.
    count:
        Number of records ``n`` contributing to the sums; must be
        positive.

    Returns
    -------
    numpy.ndarray, shape (d, d)
        The symmetrized population covariance matrix.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    first_order = np.asarray(first_order, dtype=float)
    second_order = np.asarray(second_order, dtype=float)
    if first_order.ndim != 1:
        raise ValueError("first_order must be a vector")
    d = first_order.shape[0]
    if second_order.shape != (d, d):
        raise ValueError(
            f"second_order must have shape {(d, d)}, got {second_order.shape}"
        )
    mean = first_order / count
    covariance = second_order / count - np.outer(mean, mean)
    return symmetrize(covariance)


def sums_from_covariance(
    mean: np.ndarray, covariance: np.ndarray, count: float
):
    """Invert :func:`covariance_from_sums` (Equation 3 of the paper).

    Given a group's mean vector, covariance matrix and record count,
    produce the raw sums ``(Fs, Sc)`` that a condensed group would store:
    ``Fs = n·mean`` and ``Sc = n·(C + mean meanᵀ)``.  This is exactly the
    reassembly step of ``SplitGroupStatistics``.

    Parameters
    ----------
    mean:
        Group mean vector, shape ``(d,)``.
    covariance:
        Group covariance matrix, shape ``(d, d)``.
    count:
        Number of records ``n``; must be positive.

    Returns
    -------
    first_order : numpy.ndarray, shape (d,)
        ``Fs = n·mean``.
    second_order : numpy.ndarray, shape (d, d)
        ``Sc = n·(C + mean meanᵀ)``.

    Raises
    ------
    ValueError
        If ``count`` is not positive.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    mean = np.asarray(mean, dtype=float)
    covariance = np.asarray(covariance, dtype=float)
    first_order = count * mean
    second_order = count * (symmetrize(covariance) + np.outer(mean, mean))
    return first_order, second_order


def correlation_from_covariance(covariance: np.ndarray) -> np.ndarray:
    """Convert a covariance matrix to a correlation matrix.

    Zero-variance attributes get zero correlation with everything (and
    unit self-correlation), rather than NaNs.

    Parameters
    ----------
    covariance:
        Covariance matrix, shape ``(d, d)``.

    Returns
    -------
    numpy.ndarray, shape (d, d)
        Correlation matrix with unit diagonal.
    """
    covariance = symmetrize(covariance)
    stddev = np.sqrt(np.clip(np.diag(covariance), 0.0, None))
    with np.errstate(divide="ignore", invalid="ignore"):
        outer = np.outer(stddev, stddev)
        correlation = np.where(outer > 0, covariance / outer, 0.0)
    np.fill_diagonal(correlation, 1.0)
    return correlation

"""Rank-one updates of symmetric eigendecompositions.

The dynamic maintainer's split (Fig. 3) needs the eigensystem of one
group's covariance.  When that group's decomposition is already known
from an earlier split, absorbing a record changes the covariance by a
*scaling plus a rank-one term*:

    C' = n/(n+1) · C  +  n/(n+1)² · (x − μ)(x − μ)ᵀ

so the new eigensystem is reachable without a fresh ``sorted_eigh``:
scale the eigenvalues (eigenvectors unchanged), then solve the classic
diagonal-plus-rank-one problem

    D + ρ zzᵀ,   z = Pᵀ v

whose eigenvalues are the roots of the secular equation
``f(μ) = 1 + ρ Σ zᵢ² / (dᵢ − μ)`` — one root strictly interlacing each
pair of old eigenvalues — and whose eigenvectors are
``(D − μⱼ I)⁻¹ z`` up to normalization (Bunch, Nielsen & Sorensen,
1978).  Each update costs ``O(d²)`` against the ``O(d³)`` of a dense
decomposition.

The secular formulation is only well conditioned when the old spectrum
is well separated and every component of ``z`` genuinely couples.  This
module does not deflate: near-degenerate spectra, decoupled components,
and any solution whose residual or orthogonality drifts past tolerance
raise :class:`EigenUpdateError`, and callers fall back to the exact
``sorted_eigh`` path.  The update is a shortcut, never a replacement.
"""

from __future__ import annotations

import numpy as np

#: Relative tolerance on the updated system's residual and the
#: orthogonality of the updated eigenvectors; exceeding it raises
#: :class:`EigenUpdateError` so callers take the exact path.
EIGEN_UPDATE_RTOL = 1e-8

#: Relative spectral-gap floor below which the secular formulation is
#: declared ill conditioned (near-degenerate spectrum).
EIGEN_UPDATE_GAP_RTOL = 1e-8

#: Relative coupling floor: a ``z`` component whose contribution to the
#: perturbation falls below this is effectively decoupled, which the
#: undeflated secular solve cannot represent accurately.
EIGEN_UPDATE_COUPLING_RTOL = 1e-10

_BISECTION_STEPS = 100


class EigenUpdateError(RuntimeError):
    """The rank-one shortcut is unsafe; use the exact decomposition."""


def _validate_system(eigenvalues, eigenvectors, vector):
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    eigenvectors = np.asarray(eigenvectors, dtype=float)
    vector = np.asarray(vector, dtype=float)
    if eigenvalues.ndim != 1:
        raise ValueError("eigenvalues must be a vector")
    d = eigenvalues.shape[0]
    if eigenvectors.shape != (d, d):
        raise ValueError(
            f"eigenvectors must have shape {(d, d)}, "
            f"got {eigenvectors.shape}"
        )
    if vector.shape != (d,):
        raise ValueError(
            f"vector must have shape ({d},), got {vector.shape}"
        )
    if np.any(np.diff(eigenvalues) > 0):
        raise ValueError("eigenvalues must be in decreasing order")
    return eigenvalues, eigenvectors, vector


def rank_one_eigh_update(
    eigenvalues: np.ndarray,
    eigenvectors: np.ndarray,
    rho: float,
    vector: np.ndarray,
    tol: float = EIGEN_UPDATE_RTOL,
):
    """Eigendecomposition of ``P diag(Λ) Pᵀ + ρ vvᵀ`` from that of ``A``.

    Parameters
    ----------
    eigenvalues:
        Eigenvalues of the base matrix, decreasing (the library-wide
        :func:`repro.linalg.symmetric.sorted_eigh` convention).
    eigenvectors:
        Matching orthonormal eigenvectors, one per column.
    rho:
        Scalar weight of the rank-one term.
    vector:
        The update direction ``v``, shape ``(d,)``.
    tol:
        Relative tolerance on the updated system's residual and the
        orthogonality of the updated eigenvectors.

    Returns
    -------
    (eigenvalues, eigenvectors)
        Updated decomposition, eigenvalues decreasing.

    Raises
    ------
    EigenUpdateError
        If the base spectrum is near-degenerate, a component of the
        update decouples, or the solved system misses the tolerance —
        every case in which the caller must fall back to
        :func:`repro.linalg.symmetric.sorted_eigh`.
    ValueError
        On malformed shapes or a non-decreasing eigenvalue order.
    """
    eigenvalues, eigenvectors, vector = _validate_system(
        eigenvalues, eigenvectors, vector
    )
    rho = float(rho)
    d = eigenvalues.shape[0]
    perturbation = abs(rho) * float(vector @ vector)
    scale = max(float(np.abs(eigenvalues).max()), perturbation, 1e-300)
    if perturbation == 0.0:
        return eigenvalues.copy(), eigenvectors.copy()
    if d == 1:
        updated = eigenvalues[0] + rho * vector[0] * vector[0] * (
            eigenvectors[0, 0] * eigenvectors[0, 0]
        )
        return np.array([updated]), eigenvectors.copy()

    # Work on the increasing-order diagonal problem D + rho z z^T.
    base = eigenvalues[::-1].copy()
    basis = eigenvectors[:, ::-1]
    z = basis.T @ vector
    z_squared = z * z

    gaps = np.diff(base)
    if float(gaps.min(initial=np.inf)) <= EIGEN_UPDATE_GAP_RTOL * scale:
        raise EigenUpdateError(
            "near-degenerate spectrum: secular solve ill conditioned"
        )
    if float((abs(rho) * z_squared).min()) <= (
        EIGEN_UPDATE_COUPLING_RTOL * scale
    ):
        raise EigenUpdateError(
            "decoupled update component: deflation required"
        )

    # Interlacing brackets for the secular roots.
    norm = float(z_squared.sum())
    if rho > 0.0:
        lo = base.copy()
        hi = np.concatenate((base[1:], [base[-1] + rho * norm]))
    else:
        lo = np.concatenate(([base[0] + rho * norm], base[:-1]))
        hi = base.copy()

    # f is monotone on each open bracket, with sign(rho) fixing the
    # direction; plain bisection converges unconditionally.
    sign = 1.0 if rho > 0.0 else -1.0
    with np.errstate(divide="ignore", invalid="ignore"):
        for _ in range(_BISECTION_STEPS):
            mid = 0.5 * (lo + hi)
            secular = 1.0 + rho * np.sum(
                z_squared[:, None] / (base[:, None] - mid[None, :]),
                axis=0,
            )
            below = sign * secular < 0.0
            lo = np.where(below, mid, lo)
            hi = np.where(below, hi, mid)
    roots = 0.5 * (lo + hi)

    spread = base[:, None] - roots[None, :]
    if np.any(spread == 0.0):
        raise EigenUpdateError("secular root collided with an old "
                               "eigenvalue")
    vectors = z[:, None] / spread
    norms = np.sqrt(np.sum(vectors * vectors, axis=0))
    if not np.isfinite(vectors).all() or np.any(norms == 0.0):
        raise EigenUpdateError("non-finite secular eigenvector")
    vectors /= norms

    # Residual and orthogonality gates — the fallback contract.
    residual = (
        base[:, None] * vectors
        - vectors * roots[None, :]
        + rho * np.outer(z, z @ vectors)
    )
    if float(np.abs(residual).max()) > tol * scale:
        raise EigenUpdateError("update residual exceeds tolerance")
    gram = vectors.T @ vectors
    np.fill_diagonal(gram, gram.diagonal() - 1.0)
    if float(np.abs(gram).max()) > tol:
        raise EigenUpdateError("updated eigenvectors lost orthogonality")

    updated = basis @ vectors
    return roots[::-1].copy(), updated[:, ::-1].copy()


def absorbed_record_eigh_update(
    eigenvalues: np.ndarray,
    eigenvectors: np.ndarray,
    mean: np.ndarray,
    count: int,
    record: np.ndarray,
    tol: float = EIGEN_UPDATE_RTOL,
):
    """Advance a group covariance eigensystem across one absorbed record.

    Given the eigensystem of a group's covariance *before* a record is
    folded into its sums, return the eigensystem *after*: the exact
    identity ``C' = n/(n+1)·C + n/(n+1)²·(x − μ)(x − μ)ᵀ`` scales the
    eigenvalues in place and reduces the rest to
    :func:`rank_one_eigh_update`.

    Parameters
    ----------
    eigenvalues, eigenvectors:
        Pre-absorb covariance eigensystem, decreasing order.
    mean:
        Pre-absorb group centroid ``μ``.
    count:
        Pre-absorb group size ``n`` (at least 1).
    record:
        The absorbed record ``x``.
    tol:
        Passed through to :func:`rank_one_eigh_update`.

    Returns
    -------
    (eigenvalues, eigenvectors)
        Post-absorb covariance eigensystem, decreasing order.

    Raises
    ------
    EigenUpdateError
        When the rank-one shortcut is unsafe (see
        :func:`rank_one_eigh_update`).
    """
    count = int(count)
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    mean = np.asarray(mean, dtype=float)
    record = np.asarray(record, dtype=float)
    shrink = count / (count + 1.0)
    rho = count / float((count + 1) ** 2)
    return rank_one_eigh_update(
        shrink * eigenvalues, eigenvectors, rho, record - mean, tol=tol
    )

"""Iterative Bayes reconstruction of a perturbed distribution.

The server-side half of the Agrawal–Srikant baseline (the condensation
paper's [1], with the convergence refinement of [2]): given perturbed
observations ``w_i = x_i + y_i`` and the known noise density ``f_Y``,
estimate the original density ``f_X`` by the fixed-point iteration

    f_X^{t+1}(a) = (1/n) Σ_i  f_Y(w_i − a) · f_X^t(a)
                              ─────────────────────────
                              ∫ f_Y(w_i − z) · f_X^t(z) dz

discretized on a regular grid.  Each dimension is reconstructed
independently — the structural limitation the condensation paper
criticizes and the ablation bench quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.perturbation import NoiseModel


class ReconstructedDensity:
    """A density estimate on a regular grid.

    Attributes
    ----------
    grid:
        Bin centres, shape ``(m,)``, evenly spaced.
    density:
        Estimated density values at the bin centres, integrating to 1.
    """

    def __init__(self, grid: np.ndarray, density: np.ndarray):
        grid = np.asarray(grid, dtype=float)
        density = np.asarray(density, dtype=float)
        if grid.ndim != 1 or grid.shape != density.shape:
            raise ValueError("grid and density must be equal-length vectors")
        if grid.shape[0] < 2:
            raise ValueError("need at least two grid points")
        self.grid = grid
        self.density = density
        self.step = float(grid[1] - grid[0])

    def pdf(self, values: np.ndarray) -> np.ndarray:
        """Density at arbitrary points (nearest-bin lookup, 0 outside)."""
        values = np.asarray(values, dtype=float)
        positions = np.round((values - self.grid[0]) / self.step).astype(int)
        inside = (positions >= 0) & (positions < self.grid.shape[0])
        out = np.zeros(values.shape)
        out[inside] = self.density[positions[inside]]
        return out

    def mean(self) -> float:
        """Mean of the estimated distribution."""
        return float(np.sum(self.grid * self.density) * self.step)

    def variance(self) -> float:
        """Variance of the estimated distribution."""
        mean = self.mean()
        return float(
            np.sum((self.grid - mean) ** 2 * self.density) * self.step
        )

    def sample(self, rng, size: int) -> np.ndarray:
        """Draw samples by inverse-CDF over the grid."""
        probabilities = self.density * self.step
        total = probabilities.sum()
        if total <= 0:
            raise ValueError("density integrates to zero; cannot sample")
        probabilities = probabilities / total
        choices = rng.choice(self.grid.shape[0], size=size, p=probabilities)
        jitter = rng.uniform(-0.5, 0.5, size=size) * self.step
        return self.grid[choices] + jitter


def reconstruct_density(
    perturbed: np.ndarray,
    noise: NoiseModel,
    n_bins: int = 100,
    max_iter: int = 500,
    tol: float = 1e-4,
    grid_padding: float = 3.0,
) -> ReconstructedDensity:
    """Reconstruct one attribute's density from its perturbed values.

    Parameters
    ----------
    perturbed:
        Observed values ``w_i = x_i + y_i``, shape ``(n,)``.
    noise:
        The known noise model.
    n_bins:
        Grid resolution of the estimate.
    max_iter:
        Iteration cap for the fixed point.
    tol:
        Stop when the mean absolute change of the density estimate per
        iteration drops below ``tol`` (relative to a uniform density).
    grid_padding:
        The grid spans the observed range extended by this many noise
        standard deviations on each side, so the deconvolved mass fits.

    Returns
    -------
    ReconstructedDensity
    """
    perturbed = np.asarray(perturbed, dtype=float)
    if perturbed.ndim != 1 or perturbed.shape[0] == 0:
        raise ValueError("perturbed must be a non-empty vector")
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    low = float(perturbed.min()) - grid_padding * noise.scale
    high = float(perturbed.max()) + grid_padding * noise.scale
    if high <= low:
        high = low + 1.0
    grid = np.linspace(low, high, n_bins)
    step = grid[1] - grid[0]

    # Noise kernel: kernel[i, j] = f_Y(w_i − a_j).
    kernel = noise.density(perturbed[:, None] - grid[None, :])
    density = np.full(n_bins, 1.0 / (high - low))
    uniform_level = 1.0 / (high - low)
    for __ in range(max_iter):
        weighted = kernel * density[None, :]
        normalizers = weighted.sum(axis=1) * step
        # Observations falling where the current estimate has no mass
        # contribute nothing this round (they re-enter as the estimate
        # spreads).
        valid = normalizers > 0
        if not valid.any():
            break
        updated = (
            weighted[valid] / normalizers[valid, None]
        ).mean(axis=0)
        total = updated.sum() * step
        if total > 0:
            updated = updated / total
        change = float(np.abs(updated - density).mean())
        density = updated
        if change < tol * uniform_level:
            break
    return ReconstructedDensity(grid, density)


def reconstruct_marginals(
    perturbed: np.ndarray,
    noise: NoiseModel,
    n_bins: int = 100,
    max_iter: int = 500,
) -> list[ReconstructedDensity]:
    """Reconstruct every attribute's marginal independently.

    This is exactly what the perturbation pipeline can offer downstream
    algorithms: per-dimension aggregate distributions, with the joint
    structure lost.

    Parameters
    ----------
    perturbed:
        Perturbed record array, shape ``(n, d)``.
    noise:
        The noise model the perturbation used.
    n_bins:
        Grid resolution per attribute.
    max_iter:
        Iteration cap for each EM-style reconstruction.

    Returns
    -------
    list of ReconstructedDensity
        One reconstructed marginal per attribute, in column order.

    Raises
    ------
    ValueError
        If ``perturbed`` is not 2-D.
    """
    perturbed = np.asarray(perturbed, dtype=float)
    if perturbed.ndim != 2:
        raise ValueError(
            f"perturbed must be 2-D, got shape {perturbed.shape}"
        )
    return [
        reconstruct_density(
            perturbed[:, column], noise, n_bins=n_bins, max_iter=max_iter
        )
        for column in range(perturbed.shape[1])
    ]

"""Additive-perturbation privacy (Agrawal & Srikant, the paper's [1]).

The randomization baseline the condensation paper positions itself
against: each client perturbs its record with independent noise drawn
from a publically known distribution, ``w = x + y``, and the server sees
only the perturbed values.  Privacy comes from the noise; utility comes
from reconstructing the *aggregate* distribution of ``x`` (see
:mod:`repro.baselines.reconstruction`).

Crucially — and this is the condensation paper's critique — each
dimension is perturbed and reconstructed independently, so all
inter-attribute correlation is destroyed.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.rng import check_random_state


class NoiseModel:
    """A publically known additive-noise distribution.

    Parameters
    ----------
    kind:
        ``"gaussian"`` or ``"uniform"``.
    scale:
        Standard deviation of the noise (for uniform noise the range is
        derived so the standard deviation matches, ``a = sqrt(12)·scale``).
    """

    def __init__(self, kind: str = "gaussian", scale: float = 1.0):
        if kind not in ("gaussian", "uniform"):
            raise ValueError(
                f"kind must be 'gaussian' or 'uniform', got {kind!r}"
            )
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.kind = kind
        self.scale = float(scale)

    def sample(self, rng, size) -> np.ndarray:
        """Draw noise of the given shape."""
        if self.kind == "gaussian":
            return rng.normal(0.0, self.scale, size=size)
        half_range = np.sqrt(12.0) * self.scale / 2.0
        return rng.uniform(-half_range, half_range, size=size)

    def density(self, values: np.ndarray) -> np.ndarray:
        """Noise density ``f_Y`` evaluated pointwise (known publicly)."""
        values = np.asarray(values, dtype=float)
        if self.kind == "gaussian":
            variance = self.scale**2
            return np.exp(-0.5 * values**2 / variance) / np.sqrt(
                2.0 * np.pi * variance
            )
        half_range = np.sqrt(12.0) * self.scale / 2.0
        inside = np.abs(values) <= half_range
        return np.where(inside, 1.0 / (2.0 * half_range), 0.0)

    def __repr__(self) -> str:
        return f"NoiseModel(kind={self.kind!r}, scale={self.scale})"


class AdditivePerturbation:
    """Client-side record perturbation.

    Parameters
    ----------
    noise:
        The shared :class:`NoiseModel`; the same (publically known)
        distribution perturbs every attribute independently.
    random_state:
        Seed or generator.
    """

    def __init__(self, noise: NoiseModel | None = None, random_state=None):
        self.noise = noise if noise is not None else NoiseModel()
        self._rng = check_random_state(random_state)

    def perturb(self, data: np.ndarray) -> np.ndarray:
        """Return ``data + noise`` with independent per-entry noise."""
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        return data + self.noise.sample(self._rng, data.shape)

    def privacy_interval_width(self, confidence: float = 0.95) -> float:
        """Width of the interval containing the noise with given confidence.

        Agrawal & Srikant quantify privacy as the width of the interval
        within which the true value can be pinned at a confidence level.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if self.noise.kind == "uniform":
            full_width = np.sqrt(12.0) * self.noise.scale
            return confidence * full_width
        # Gaussian: central interval of the normal distribution.
        from scipy.stats import norm

        quantile = norm.ppf(0.5 + confidence / 2.0)
        return 2.0 * quantile * self.noise.scale

"""Rank swapping — the data-swapping baseline.

The paper's related work cites data swapping (its references [8] and
[15]): protect privacy by exchanging attribute values between records
so that marginals are preserved exactly while record-level values are
scrambled.  Rank swapping is the standard continuous-attribute variant:
each attribute's values are sorted and every value is swapped with a
partner whose rank is within ``p`` percent of its own.

Its defining trade-off is the mirror image of condensation's: marginal
distributions survive *exactly* (every original value appears exactly
once per column), but the joint structure — the inter-attribute
correlations condensation is designed to keep — erodes as ``p`` grows.
The test suite and the A3 family of benches use it as a second
correlation-destroying baseline.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.rng import check_random_state


class RankSwapper:
    """Rank swapping of every attribute independently.

    Parameters
    ----------
    swap_range:
        Maximum rank distance of a swap, as a fraction of the number of
        records (the classic ``p`` parameter).  0 disables swapping;
        1 allows any permutation.
    random_state:
        Seed or generator.
    """

    def __init__(self, swap_range: float = 0.05, random_state=None):
        if not 0.0 <= swap_range <= 1.0:
            raise ValueError(
                f"swap_range must be in [0, 1], got {swap_range}"
            )
        self.swap_range = float(swap_range)
        self._rng = check_random_state(random_state)

    def anonymize(self, data: np.ndarray) -> np.ndarray:
        """Return a rank-swapped copy of ``data``.

        Every column of the output is a permutation of the same column
        of the input (marginals preserved exactly); rows are no longer
        the original records.
        """
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        n = data.shape[0]
        if n < 2 or self.swap_range == 0.0:
            return data.copy()
        window = max(1, int(round(self.swap_range * n)))
        swapped = data.copy()
        for column in range(data.shape[1]):
            order = np.argsort(data[:, column], kind="stable")
            available = np.ones(n, dtype=bool)
            for rank in range(n):
                if not available[rank]:
                    continue
                available[rank] = False
                high = min(n, rank + window + 1)
                candidates = np.flatnonzero(available[rank + 1:high])
                if candidates.size == 0:
                    continue
                partner = rank + 1 + int(
                    candidates[self._rng.integers(0, candidates.size)]
                )
                available[partner] = False
                first, second = order[rank], order[partner]
                swapped[first, column], swapped[second, column] = (
                    swapped[second, column], swapped[first, column],
                )
        return swapped

"""Distribution-based classification over reconstructed marginals.

The perturbation pipeline cannot hand a nearest-neighbour classifier
actual records — only per-dimension aggregate distributions.  The
closest classifier the approach supports is therefore a product-of-
marginals Bayes rule: reconstruct ``f_X`` per class and per attribute
from the perturbed training data, then score test records by

    P(class | x) ∝ prior(class) · Π_j f_X^{class,j}(x_j).

This is the distribution-based analogue of a single-attribute-split
algorithm (the paper's [1] builds a decision tree the same way) and
inherits the approach's defining weakness: attribute independence.
The ablation bench compares it against condensation + k-NN at matched
noise levels.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.perturbation import AdditivePerturbation, NoiseModel
from repro.baselines.reconstruction import (
    ReconstructedDensity,
    reconstruct_marginals,
)
from repro.linalg.rng import check_random_state

#: Density floor preventing log(0) for records outside a reconstructed
#: distribution's support.
_DENSITY_FLOOR = 1e-12


class PerturbedDistributionClassifier:
    """End-to-end perturbation baseline: perturb, reconstruct, classify.

    Parameters
    ----------
    noise:
        Shared noise model (defaults to unit Gaussian noise).
    n_bins:
        Grid resolution of the reconstructed marginals.
    max_iter:
        Iteration cap of the reconstruction fixed point.
    random_state:
        Seed or generator for the perturbation noise.
    """

    def __init__(self, noise: NoiseModel | None = None, n_bins: int = 100,
                 max_iter: int = 300, random_state=None):
        self.noise = noise if noise is not None else NoiseModel()
        self.n_bins = int(n_bins)
        self.max_iter = int(max_iter)
        self._rng = check_random_state(random_state)
        self.classes_ = None
        self.class_prior_ = None
        self.marginals_: dict = {}

    def fit(self, data: np.ndarray, labels: np.ndarray):
        """Perturb the training data and reconstruct per-class marginals.

        The model never sees the raw ``data`` beyond this call — it
        perturbs immediately and reconstructs from the perturbed copy,
        faithfully simulating the client/server split of the
        randomization approach.
        """
        data = np.asarray(data, dtype=float)
        labels = np.asarray(labels)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        if labels.shape != (data.shape[0],):
            raise ValueError(
                f"labels must have shape ({data.shape[0]},), "
                f"got {labels.shape}"
            )
        perturber = AdditivePerturbation(self.noise, random_state=self._rng)
        perturbed = perturber.perturb(data)
        self.classes_ = np.unique(labels)
        self.class_prior_ = np.array(
            [np.mean(labels == label) for label in self.classes_]
        )
        self.marginals_ = {}
        for label in self.classes_:
            members = perturbed[labels == label]
            self.marginals_[label] = reconstruct_marginals(
                members, self.noise, n_bins=self.n_bins,
                max_iter=self.max_iter,
            )
        return self

    def _log_posterior(self, data: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("classifier is not fitted; call fit() first")
        data = np.atleast_2d(np.asarray(data, dtype=float))
        scores = np.empty((data.shape[0], self.classes_.shape[0]))
        for position, label in enumerate(self.classes_):
            marginals: list[ReconstructedDensity] = self.marginals_[label]
            log_likelihood = np.zeros(data.shape[0])
            for column, marginal in enumerate(marginals):
                densities = marginal.pdf(data[:, column])
                log_likelihood += np.log(
                    np.clip(densities, _DENSITY_FLOOR, None)
                )
            scores[:, position] = log_likelihood + np.log(
                self.class_prior_[position]
            )
        return scores

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Maximum-posterior class per record."""
        scores = self._log_posterior(data)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, data: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        labels = np.asarray(labels)
        return float(np.mean(self.predict(data) == labels))

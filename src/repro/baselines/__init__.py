"""The perturbation baseline (Agrawal–Srikant randomization).

The approach the condensation paper positions itself against (§1):
additive noise at the client, iterative Bayes density reconstruction at
the server, and a distribution-based classifier as the only kind of
mining the reconstructed (per-dimension, correlation-free) aggregates
support.
"""

from repro.baselines.distribution_classifier import (
    PerturbedDistributionClassifier,
)
from repro.baselines.perturbation import AdditivePerturbation, NoiseModel
from repro.baselines.reconstruction import (
    ReconstructedDensity,
    reconstruct_density,
    reconstruct_marginals,
)
from repro.baselines.swapping import RankSwapper

__all__ = [
    "AdditivePerturbation",
    "NoiseModel",
    "RankSwapper",
    "ReconstructedDensity",
    "reconstruct_density",
    "reconstruct_marginals",
    "PerturbedDistributionClassifier",
]

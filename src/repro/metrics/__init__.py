"""Evaluation metrics for the reproduction.

Includes the paper-specific statistics — the covariance compatibility
coefficient μ (§4) and the Abalone within-tolerance accuracy — alongside
standard classification and regression metrics used by the harness.
"""

from repro.metrics.classification import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
)
from repro.metrics.compatibility import (
    covariance_compatibility,
    covariance_matrix,
    mean_compatibility,
)
from repro.metrics.regression import (
    mean_absolute_error,
    mean_squared_error,
    r2_score,
    tolerance_accuracy,
)

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "f1_score",
    "precision_score",
    "recall_score",
    "covariance_compatibility",
    "covariance_matrix",
    "mean_compatibility",
    "mean_absolute_error",
    "mean_squared_error",
    "r2_score",
    "tolerance_accuracy",
]

"""Classification metrics."""

from __future__ import annotations

import numpy as np


def _validate_pair(y_true: np.ndarray, y_pred: np.ndarray):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(
            "y_true and y_pred must be 1-D arrays of equal length, got "
            f"{y_true.shape} and {y_pred.shape}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("metrics over empty label arrays are undefined")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching labels.

    Parameters
    ----------
    y_true:
        True labels, 1-D.
    y_pred:
        Predicted labels, 1-D, same length.

    Returns
    -------
    float
        ``mean(y_true == y_pred)``.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels=None
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class i predicted j.

    Parameters
    ----------
    y_true:
        True labels, 1-D.
    y_pred:
        Predicted labels, 1-D, same length.
    labels:
        Optional explicit class ordering; defaults to the sorted union of
        labels seen in either array.

    Returns
    -------
    numpy.ndarray, shape (n_classes, n_classes)
        Integer counts; rows are true classes, columns predictions.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {label: position for position, label in enumerate(labels)}
    matrix = np.zeros((labels.shape[0], labels.shape[0]), dtype=np.int64)
    for true_label, pred_label in zip(y_true, y_pred):
        matrix[index[true_label], index[pred_label]] += 1
    return matrix


def _per_class_counts(y_true: np.ndarray, y_pred: np.ndarray):
    labels = np.unique(np.concatenate([y_true, y_pred]))
    matrix = confusion_matrix(y_true, y_pred, labels=labels)
    true_positive = np.diag(matrix).astype(float)
    predicted = matrix.sum(axis=0).astype(float)
    actual = matrix.sum(axis=1).astype(float)
    return labels, true_positive, predicted, actual


def _safe_divide(numerator: np.ndarray, denominator: np.ndarray):
    out = np.zeros_like(numerator, dtype=float)
    mask = denominator > 0
    out[mask] = numerator[mask] / denominator[mask]
    return out


def precision_score(
    y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro"
) -> float:
    """Precision, macro- or micro-averaged across classes.

    Parameters
    ----------
    y_true:
        True labels, 1-D.
    y_pred:
        Predicted labels, 1-D, same length.
    average:
        ``"macro"`` (unweighted mean of per-class scores, the default)
        or ``"micro"`` (global counts).

    Returns
    -------
    float
        Precision in ``[0, 1]``.

    Raises
    ------
    ValueError
        If ``average`` is not ``"macro"`` or ``"micro"``.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    __, true_positive, predicted, __ = _per_class_counts(y_true, y_pred)
    if average == "micro":
        total = float(predicted.sum())
        return float(true_positive.sum() / total) if total else 0.0
    if average == "macro":
        return float(_safe_divide(true_positive, predicted).mean())
    raise ValueError(f"average must be 'macro' or 'micro', got {average!r}")


def recall_score(
    y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro"
) -> float:
    """Recall, macro- or micro-averaged across classes.

    Parameters
    ----------
    y_true:
        True labels, 1-D.
    y_pred:
        Predicted labels, 1-D, same length.
    average:
        ``"macro"`` (unweighted mean of per-class scores, the default)
        or ``"micro"`` (global counts).

    Returns
    -------
    float
        Recall in ``[0, 1]``.

    Raises
    ------
    ValueError
        If ``average`` is not ``"macro"`` or ``"micro"``.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    __, true_positive, __, actual = _per_class_counts(y_true, y_pred)
    if average == "micro":
        total = float(actual.sum())
        return float(true_positive.sum() / total) if total else 0.0
    if average == "macro":
        return float(_safe_divide(true_positive, actual).mean())
    raise ValueError(f"average must be 'macro' or 'micro', got {average!r}")


def f1_score(
    y_true: np.ndarray, y_pred: np.ndarray, average: str = "macro"
) -> float:
    """Harmonic mean of per-class precision and recall, then averaged.

    Parameters
    ----------
    y_true:
        True labels, 1-D.
    y_pred:
        Predicted labels, 1-D, same length.
    average:
        ``"macro"`` (unweighted mean of per-class scores, the default)
        or ``"micro"`` (global counts).

    Returns
    -------
    float
        F1 score in ``[0, 1]``.

    Raises
    ------
    ValueError
        If ``average`` is not ``"macro"`` or ``"micro"``.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    __, true_positive, predicted, actual = _per_class_counts(y_true, y_pred)
    if average == "micro":
        precision = precision_score(y_true, y_pred, average="micro")
        recall = recall_score(y_true, y_pred, average="micro")
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)
    if average == "macro":
        per_precision = _safe_divide(true_positive, predicted)
        per_recall = _safe_divide(true_positive, actual)
        denominator = per_precision + per_recall
        per_f1 = _safe_divide(2 * per_precision * per_recall, denominator)
        return float(per_f1.mean())
    raise ValueError(f"average must be 'macro' or 'micro', got {average!r}")

"""Statistical compatibility between original and anonymized data.

The paper's §4 measures how faithfully condensation preserves the
covariance structure: for every attribute pair ``(i, j)`` take the entry
``o_ij`` of the original data's covariance matrix and ``p_ij`` of the
anonymized data's covariance matrix, then report the Pearson correlation
μ between the paired entry collections.  μ = 1 means the two covariance
matrices are perfectly linearly related; the paper reports μ > 0.98 for
static condensation across group sizes.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.symmetric import symmetrize


def covariance_matrix(data: np.ndarray) -> np.ndarray:
    """Population covariance matrix of a record array, shape ``(d, d)``.

    Parameters
    ----------
    data:
        Record array, shape ``(n, d)`` with ``n >= 1``.

    Returns
    -------
    numpy.ndarray, shape (d, d)
        Symmetrized population covariance.

    Raises
    ------
    ValueError
        If ``data`` is not 2-D or is empty.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    if data.shape[0] == 0:
        raise ValueError("covariance of an empty data set is undefined")
    centered = data - data.mean(axis=0)
    return symmetrize(centered.T @ centered / data.shape[0])


def _pairwise_entries(matrix: np.ndarray) -> np.ndarray:
    """Flatten the upper triangle (including diagonal) of a square matrix.

    The covariance matrix is symmetric, so using each unordered pair once
    avoids double-weighting the off-diagonal entries in the correlation.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {matrix.shape}")
    rows, cols = np.triu_indices(matrix.shape[0])
    return matrix[rows, cols]


def covariance_compatibility(
    original: np.ndarray, anonymized: np.ndarray
) -> float:
    """Covariance compatibility coefficient μ between two data sets.

    Parameters
    ----------
    original:
        The original record array, shape ``(n, d)``.
    anonymized:
        The anonymized record array, shape ``(m, d)`` — row counts may
        differ but dimensionality must match.

    Returns
    -------
    float
        Pearson correlation between the paired covariance entries, in
        ``[-1, 1]``; 1 when the covariance structures are identical up to
        a positive affine map, -1 for perfect negative correlation.

    Notes
    -----
    When either entry collection is constant (zero variance, e.g. a
    one-dimensional data set whose covariance "matrix" is a single
    number) the Pearson correlation is undefined; this implementation
    returns 1.0 if the two collections are elementwise equal within
    floating tolerance and 0.0 otherwise, which keeps sweeps over
    degenerate configurations well-behaved.
    """
    original = np.asarray(original, dtype=float)
    anonymized = np.asarray(anonymized, dtype=float)
    if original.ndim != 2 or anonymized.ndim != 2:
        raise ValueError("both data sets must be 2-D record arrays")
    if original.shape[1] != anonymized.shape[1]:
        raise ValueError(
            "dimensionality mismatch: "
            f"{original.shape[1]} vs {anonymized.shape[1]}"
        )
    o_entries = _pairwise_entries(covariance_matrix(original))
    p_entries = _pairwise_entries(covariance_matrix(anonymized))
    return matrix_entry_correlation(o_entries, p_entries)


def matrix_entry_correlation(
    o_entries: np.ndarray, p_entries: np.ndarray
) -> float:
    """Pearson correlation between two paired entry collections.

    Parameters
    ----------
    o_entries:
        Entries from the original matrix, flattened.
    p_entries:
        Entries from the anonymized matrix, same shape.

    Returns
    -------
    float
        Pearson correlation in ``[-1, 1]``; for zero-variance
        collections, 1.0 when elementwise close and 0.0 otherwise.

    Raises
    ------
    ValueError
        If the collections' shapes differ.
    """
    o_entries = np.asarray(o_entries, dtype=float)
    p_entries = np.asarray(p_entries, dtype=float)
    if o_entries.shape != p_entries.shape:
        raise ValueError(
            f"entry collections must align, got {o_entries.shape} "
            f"vs {p_entries.shape}"
        )
    o_centered = o_entries - o_entries.mean()
    p_centered = p_entries - p_entries.mean()
    o_norm = float(np.sqrt(o_centered @ o_centered))
    p_norm = float(np.sqrt(p_centered @ p_centered))
    if o_norm == 0.0 or p_norm == 0.0:
        return 1.0 if np.allclose(o_entries, p_entries) else 0.0
    value = float(o_centered @ p_centered / (o_norm * p_norm))
    return float(np.clip(value, -1.0, 1.0))


def mean_compatibility(original: np.ndarray, anonymized: np.ndarray) -> float:
    """Relative error between the mean vectors of two data sets.

    A companion diagnostic to μ: condensation preserves first-order sums
    exactly in aggregate, so this should be ~0 for static condensation.
    Returned as ``||mean_o − mean_p|| / max(||mean_o||, 1)``.

    Parameters
    ----------
    original:
        The original record array, shape ``(n, d)``.
    anonymized:
        The anonymized record array, shape ``(m, d)``.

    Returns
    -------
    float
        Non-negative relative error; ~0 when means agree.

    Raises
    ------
    ValueError
        If the dimensionalities differ.
    """
    original = np.asarray(original, dtype=float)
    anonymized = np.asarray(anonymized, dtype=float)
    if original.shape[1] != anonymized.shape[1]:
        raise ValueError(
            "dimensionality mismatch: "
            f"{original.shape[1]} vs {anonymized.shape[1]}"
        )
    mean_o = original.mean(axis=0)
    mean_p = anonymized.mean(axis=0)
    scale = max(float(np.linalg.norm(mean_o)), 1.0)
    return float(np.linalg.norm(mean_o - mean_p) / scale)

"""Regression metrics, including the paper's Abalone protocol."""

from __future__ import annotations

import numpy as np


def _validate_pair(y_true: np.ndarray, y_pred: np.ndarray):
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ValueError(
            "y_true and y_pred must be 1-D arrays of equal length, got "
            f"{y_true.shape} and {y_pred.shape}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("metrics over empty target arrays are undefined")
    return y_true, y_pred


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of squared residuals.

    Parameters
    ----------
    y_true:
        True targets, 1-D.
    y_pred:
        Predicted targets, 1-D, same length.

    Returns
    -------
    float
        ``mean((y_true - y_pred)**2)``.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    residuals = y_true - y_pred
    return float(np.mean(residuals * residuals))


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of absolute residuals.

    Parameters
    ----------
    y_true:
        True targets, 1-D.
    y_pred:
        Predicted targets, 1-D, same length.

    Returns
    -------
    float
        ``mean(|y_true - y_pred|)``.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    Returns 0.0 when the true targets are constant and the predictions
    are imperfect (the usual convention that avoids dividing by zero),
    and 1.0 when predictions match a constant target exactly.

    Parameters
    ----------
    y_true:
        True targets, 1-D.
    y_pred:
        Predicted targets, 1-D, same length.

    Returns
    -------
    float
        ``1 - SS_res / SS_tot``; at most 1, unbounded below.
    """
    y_true, y_pred = _validate_pair(y_true, y_pred)
    residual = float(np.sum((y_true - y_pred) ** 2))
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def tolerance_accuracy(
    y_true: np.ndarray, y_pred: np.ndarray, tol: float = 1.0
) -> float:
    """Fraction of predictions within ``tol`` of the truth.

    The paper's Abalone metric: "the percentage of the time that the age
    was predicted within an accuracy of less than one year" — i.e. this
    function with ``tol=1.0`` over predicted ages.

    Parameters
    ----------
    y_true:
        True targets, 1-D.
    y_pred:
        Predicted targets, 1-D, same length.
    tol:
        Half-width of the acceptance band; must be non-negative.

    Returns
    -------
    float
        Fraction of predictions with ``|y_true - y_pred| <= tol``.

    Raises
    ------
    ValueError
        If ``tol`` is negative.
    """
    if tol < 0:
        raise ValueError(f"tol must be non-negative, got {tol}")
    y_true, y_pred = _validate_pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred) <= tol))

"""File discovery and rule driving.

:func:`analyze_paths` walks files and directories, parses each module
once, runs every rule over it, and filters the findings through the
module's suppression comments.  :func:`analyze_source` does the same
for an in-memory snippet — the primitive the rule tests are built on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, get_rules
from repro.analysis.suppressions import is_suppressed, parse_suppressions

_SKIP_DIRECTORIES = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", "build",
    "dist", ".eggs",
})


def iter_python_files(paths: Iterable) -> list:
    """Expand files and directories into a sorted list of ``.py`` files.

    Parameters
    ----------
    paths:
        File or directory paths (strings or ``Path``).

    Returns
    -------
    list of Path
        Unique Python files, sorted for deterministic reports.

    Raises
    ------
    FileNotFoundError
        If a given path does not exist.
    """
    found: set = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                found.add(path)
            continue
        for candidate in path.rglob("*.py"):
            if not _SKIP_DIRECTORIES & set(candidate.parts):
                found.add(candidate)
    return sorted(found)


def analyze_module(module: ModuleContext, rules: Sequence[Rule]) -> list:
    """Run ``rules`` over one parsed module, honoring suppressions.

    Parameters
    ----------
    module:
        Parsed module context.
    rules:
        Rule instances to run.

    Returns
    -------
    list of Finding
        Unsuppressed findings, sorted by location.
    """
    suppressions = parse_suppressions(module.source)
    findings = [
        finding
        for rule in rules
        for finding in rule.check(module)
        if not is_suppressed(suppressions, finding.line, finding.rule_id)
    ]
    return sorted(findings)


def analyze_source(
    source: str,
    path: str = "<memory>",
    rules: Sequence[Rule] | None = None,
) -> list:
    """Analyze an in-memory snippet.

    Parameters
    ----------
    source:
        Python source text.
    path:
        Virtual path used for path-scoped rules (e.g.
        ``"src/repro/core/x.py"`` to make PRIV-001 apply).
    rules:
        Rule instances to run; all registered rules by default.

    Returns
    -------
    list of Finding
        Unsuppressed findings, sorted by location.

    Raises
    ------
    SyntaxError
        If ``source`` does not parse.
    """
    module = ModuleContext.from_source(source, path=path)
    return analyze_module(module, get_rules() if rules is None else rules)


def analyze_paths(
    paths: Iterable,
    rules: Sequence[Rule] | None = None,
) -> tuple[list, list]:
    """Analyze every Python file under ``paths``.

    Parameters
    ----------
    paths:
        File or directory paths to scan.
    rules:
        Rule instances to run; all registered rules by default.

    Returns
    -------
    tuple of (list of Finding, list of str)
        Sorted findings across all files, and per-file error strings
        for files that could not be read or parsed (an unparsable file
        is reported, never silently skipped).
    """
    if rules is None:
        rules = get_rules()
    findings: list = []
    errors: list = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            module = ModuleContext.from_source(source, path=str(path))
        except (OSError, SyntaxError, ValueError) as error:
            errors.append(f"{path}: {error}")
            continue
        findings.extend(analyze_module(module, rules))
    return sorted(findings), errors

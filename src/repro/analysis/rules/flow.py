"""PRIV-003 — whole-program raw-record flow.

PRIV-001/002 are local: they catch a raw-record attribute stored on a
group object, or a record-named value handed straight to telemetry,
inside one module.  The leak the paper actually worries about is
interprocedural: a loader's return value threaded through two helpers
and finally serialized by an exporter three modules away.  PRIV-003
closes that gap by running the project taint engine
(:mod:`repro.analysis.project.taint`) and reporting every tainted value
that reaches a sink outside the sanctioned modules — with the full
source→sink hop chain attached so the finding reads as a path.

This rule only runs under ``repro lint --project``; the classic
per-module pass is unaffected.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.project.taint import Leak, analyze_taint
from repro.analysis.registry import ProjectRule, register

_MESSAGE = (
    "raw records from {origin} reach {sink} in {function}(); anonymized "
    "output must be drawn from group statistics (Fs, Sc, n), never from "
    "records — aggregate first or move the sink into a sanctioned module"
)


def _describe_origin(leak: Leak) -> str:
    """Render a leak's taint origin for the finding message.

    Parameters
    ----------
    leak:
        The leak whose origin is described.

    Returns
    -------
    str
        ``"load_x()"`` for source-call origins, ``"parameter 'data' of
        f()"`` for entry-point parameters.
    """
    origin = leak.origin
    if origin.kind == "param":
        return f"parameter {origin.detail!r} of {origin.qualname}()"
    return f"{origin.qualname}()"


@register
class RawRecordFlowRule(ProjectRule):
    """Report tainted raw-record values reaching unsanctioned sinks."""

    rule_id = "PRIV-003"
    summary = (
        "whole-program taint: raw records must not reach file writes, "
        "serialization, telemetry or log sinks outside sanctioned modules"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Run the taint engine and convert leaks to findings.

        Parameters
        ----------
        project:
            The :class:`repro.analysis.project.ProjectIndex`.

        Yields
        ------
        Finding
            One finding per source→sink leak, carrying the hop chain
            in ``trace``.
        """
        for leak in analyze_taint(project):
            yield Finding(
                path=leak.path,
                line=leak.line,
                column=leak.column,
                rule_id=self.rule_id,
                message=_MESSAGE.format(
                    origin=_describe_origin(leak),
                    sink=leak.sink,
                    function=leak.function,
                ),
                trace=leak.trace,
            )

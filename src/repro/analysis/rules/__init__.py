"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import docstrings, pitfalls, privacy, rng

__all__ = ["docstrings", "pitfalls", "privacy", "rng"]

"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (
    determinism,
    docstrings,
    flow,
    pitfalls,
    privacy,
    rng,
)

__all__ = [
    "determinism", "docstrings", "flow", "pitfalls", "privacy", "rng",
]

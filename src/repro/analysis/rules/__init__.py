"""Rule modules; importing this package populates the registry."""

from repro.analysis.rules import (
    concurrency,
    determinism,
    doccoverage,
    docstrings,
    flow,
    fs,
    pitfalls,
    privacy,
    resources,
    rng,
    threading,
)

__all__ = [
    "concurrency", "determinism", "doccoverage", "docstrings", "flow",
    "fs", "pitfalls", "privacy", "resources", "rng", "threading",
]

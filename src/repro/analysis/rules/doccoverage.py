"""DOC-002 — the parallel public API must be documented.

``repro.parallel`` grew from two functions to a full subsystem (warm
pool, shared-memory payloads, degradation warnings); its docs rot the
moment an export lands without a matching mention.  DOC-002 pins the
contract: every name in ``repro.parallel.__all__`` must appear — as a
whole word — somewhere in ``docs/parallel.md`` or ``docs/api.md``.

The rule is a :class:`~repro.analysis.registry.ProjectRule` because it
correlates a source file with documentation files: it reads the
``__all__`` literal straight out of the package's AST (no import), then
walks up from the package path to find the repository's ``docs/``
directory.  Trees without the docs (vendored copies, partial
checkouts) produce no findings rather than noise.

Caveat for cached runs: the analysis cache is keyed on *Python*
content, so an edit that only deletes a line from ``docs/parallel.md``
does not invalidate a previous clean result — CI runs ``--no-cache``
for exactly this reason (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register

#: The package whose export surface is checked.
_PACKAGE = "repro.parallel"

#: Documentation files (relative to the repo root) that may satisfy a
#: mention; one whole-word hit in any of them clears the symbol.
_DOC_FILES = ("docs/parallel.md", "docs/api.md")


def _exported_names(tree) -> list:
    """Extract ``(name, line, column)`` triples from an ``__all__`` literal.

    Parameters
    ----------
    tree:
        Parsed module AST of the package ``__init__``.

    Returns
    -------
    list
        One triple per string element, in declaration order; empty when
        the module has no literal ``__all__``.
    """
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [
            target.id for target in node.targets
            if isinstance(target, ast.Name)
        ]
        if "__all__" not in targets:
            continue
        if not isinstance(node.value, (ast.List, ast.Tuple)):
            return []
        return [
            (element.value, element.lineno, element.col_offset)
            for element in node.value.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
    return []


def _find_docs_root(package_path: str):
    """Walk up from the package path to the directory holding ``docs/``.

    Parameters
    ----------
    package_path:
        Path of the package ``__init__.py`` as given to the analyzer.

    Returns
    -------
    str or None
        Repository root containing the first doc file, or ``None``
        when no ancestor has one (partial checkout: rule stays quiet).
    """
    current = os.path.dirname(os.path.abspath(package_path))
    while True:
        if os.path.isfile(os.path.join(current, _DOC_FILES[0])):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


@register
class ParallelDocCoverageRule(ProjectRule):
    """Require a docs mention for every ``repro.parallel`` export."""

    rule_id = "DOC-002"
    summary = (
        "every public symbol exported from repro.parallel must be "
        "mentioned in docs/parallel.md or docs/api.md"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Compare the package's ``__all__`` against the doc corpus.

        Parameters
        ----------
        project:
            The :class:`repro.analysis.project.ProjectIndex`.

        Yields
        ------
        Finding
            One finding per exported-but-undocumented symbol, anchored
            at the symbol's ``__all__`` entry.
        """
        info = project.modules.get(_PACKAGE)
        if info is None:
            return
        path = info.context.path
        exported = _exported_names(info.context.tree)
        if not exported:
            return
        root = _find_docs_root(path)
        if root is None:
            return
        corpus = []
        for relative in _DOC_FILES:
            doc_path = os.path.join(root, relative)
            if os.path.isfile(doc_path):
                with open(doc_path, "r", encoding="utf-8") as handle:
                    corpus.append(handle.read())
        if not corpus:
            return
        text = "\n".join(corpus)
        for name, line, column in exported:
            if re.search(rf"\b{re.escape(name)}\b", text):
                continue
            yield Finding(
                path=path, line=line, column=column,
                rule_id=self.rule_id,
                message=(
                    f"public symbol {name!r} is exported from "
                    f"{_PACKAGE} but never mentioned in "
                    f"{' or '.join(_DOC_FILES)}; document it or stop "
                    f"exporting it"
                ),
            )

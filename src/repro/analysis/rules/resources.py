"""RES-001 — must-close analysis over file and durability handles.

A leaked file handle is a correctness bug in this codebase, not a
style nit: an unclosed WAL segment holds unflushed frames that a crash
then loses *silently* — the durable frontier ends earlier than the
caller believes — and an unclosed ``DurabilityManager`` skips the
final ``fsync`` its ``close()`` guarantees.  On Windows an open handle
additionally blocks the ``os.replace`` publish of the very file it
reads.

**RES-001** finds every acquisition — builtin/``Path.open()`` calls,
``WriteAheadLog(...)``, ``DurabilityManager(...)`` — in runtime
``repro`` modules and requires one of the ownership disciplines the
codebase already uses:

* the acquisition is the context expression of a ``with`` block
  (released on every path by construction);
* it is assigned to a local that is later closed in a ``try/finally``
  handler, used as a ``with`` context, returned to the caller, or
  stored into an object attribute (ownership transfer — e.g. the
  ``recover()`` classmethods handing their manager to the condenser);
* it is stored directly on ``self`` in a class that defines
  ``close()``/``__exit__`` (the ``WriteAheadLog._active_handle``
  pattern), so the object's own lifecycle releases it.

Anything else — an acquisition whose result is dropped, parsed inline
(``json.load(open(p))``), or bound to a local that no path provably
releases — is flagged with a PRIV-003-style provenance trace from the
acquisition to the missing release.

The analysis is per-function and syntactic ("dominated" means a
release *shape* exists, not full path sensitivity), which matches how
the tree actually manages handles; passing a handle onward as a call
argument is not recognized as a release, so factor such code into a
``with`` or transfer ownership explicitly.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import parent_map
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register
from repro.analysis.rules.protocol import (
    describe_expression,
    is_runtime_module,
    open_call_shape,
    open_mode,
    open_path_expression,
    owning_class_name,
    resolve,
)

#: Methods whose definition makes a class a credible handle owner.
_LIFECYCLE_METHODS = ("close", "__exit__", "__del__")

_RES001_DROPPED_MESSAGE = (
    "{described} acquires {kind} whose handle is immediately dropped; "
    "wrap the acquisition in a with-block"
)
_RES001_INLINE_MESSAGE = (
    "{described} acquires {kind} inside a larger expression, so "
    "nothing can ever close it; bind it in a with-block instead"
)
_RES001_LOCAL_MESSAGE = (
    "{described} binds {kind} to {name!r} but no with-block, "
    "try/finally close, return, or ownership transfer releases it in "
    "{function}(); a crash here silently loses buffered durable state"
)
_RES001_SELF_MESSAGE = (
    "{described} stores {kind} on {class_name}, which defines none of "
    "close()/__exit__/__del__; the handle outlives every scope that "
    "could release it"
)


def _acquisition_kind(project, info, node) -> str | None:
    """Classify a call as a must-close acquisition.

    Parameters
    ----------
    project:
        The project index.
    info:
        Module the call appears in.
    node:
        Any :class:`ast.Call`.

    Returns
    -------
    str or None
        Human description of the acquired resource, or ``None``.
    """
    shape = open_call_shape(node)
    if shape is not None:
        mode = open_mode(node)
        flavor = "a file handle"
        if mode is not None and mode[:1] in ("w", "a", "x", "+"):
            flavor = "a writable file handle"
        target = describe_expression(open_path_expression(node))
        return f"{flavor} on {target}"
    owner = owning_class_name(project, info, node)
    if owner is not None:
        return f"a {owner} (owns an open WAL segment until close())"
    return None


def _with_context_nodes(function_node) -> set:
    """Every node nested inside a ``with``-item context expression.

    Parameters
    ----------
    function_node:
        The ``def`` node to scan.

    Returns
    -------
    set of int
        ``id()`` of each covered node — an acquisition there is
        released by the ``with`` protocol (directly or through a
        wrapper such as ``contextlib.closing``).
    """
    covered = set()
    for node in ast.walk(function_node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for nested in ast.walk(item.context_expr):
                    covered.add(id(nested))
    return covered


def _released_locals(function_node) -> set:
    """Local names the function provably releases or hands off.

    Parameters
    ----------
    function_node:
        The ``def`` node to scan.

    Returns
    -------
    set of str
        Names that are closed in a ``try/finally``, used as a ``with``
        context, returned, or stored into an object attribute.
    """
    released = set()
    for node in ast.walk(function_node):
        if isinstance(node, ast.Try):
            for statement in node.finalbody:
                for call in ast.walk(statement):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr == "close"
                        and isinstance(call.func.value, ast.Name)
                    ):
                        released.add(call.func.value.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                for nested in ast.walk(item.context_expr):
                    if isinstance(nested, ast.Name):
                        released.add(nested.id)
        elif isinstance(node, ast.Return) and isinstance(
            node.value, ast.Name
        ):
            released.add(node.value.id)
        elif isinstance(node, ast.Assign):
            # ``condenser._manager = manager`` — ownership transfer to
            # an object whose lifecycle now covers the handle.
            if isinstance(node.value, ast.Name) and any(
                isinstance(target, ast.Attribute)
                for target in node.targets
            ):
                released.add(node.value.id)
    return released


def _class_owns_lifecycle(info, class_name) -> bool:
    """Whether a class defines a handle-releasing lifecycle method.

    Parameters
    ----------
    info:
        :class:`ModuleInfo` defining the class.
    class_name:
        Name of the class to check.

    Returns
    -------
    bool
    """
    return any(
        f"{class_name}.{method}" in info.functions
        for method in _LIFECYCLE_METHODS
    )


@register
class MustCloseRule(ProjectRule):
    """Every handle acquisition is dominated by a release discipline."""

    rule_id = "RES-001"
    summary = (
        "file/WAL/manager acquisitions must be released via with, "
        "try/finally close, or ownership transfer to a closeable object"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Scan runtime functions for unreleased acquisitions.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        for name in sorted(project.modules):
            info = project.modules[name]
            if not is_runtime_module(info):
                continue
            for local in sorted(info.functions):
                yield from self._check_function(
                    project, info, info.functions[local]
                )

    def _check_function(self, project, info, function) -> Iterator[Finding]:
        """Emit findings for one function's acquisitions.

        Parameters
        ----------
        project:
            The project index.
        info:
            The enclosing :class:`ModuleInfo`.
        function:
            The :class:`FunctionInfo` to scan.

        Yields
        ------
        Finding
        """
        covered = _with_context_nodes(function.node)
        released = _released_locals(function.node)
        parents = parent_map(function.node)
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Call) or id(node) in covered:
                continue
            kind = _acquisition_kind(project, info, node)
            if kind is None:
                continue
            described = f"{describe_expression(node.func)}()"
            yield from self._classify(
                info, function, node, parents, released,
                described, kind,
            )

    def _classify(
        self, info, function, node, parents, released, described, kind
    ) -> Iterator[Finding]:
        """Judge one uncovered acquisition against the disciplines.

        Parameters
        ----------
        info:
            The enclosing :class:`ModuleInfo`.
        function:
            The enclosing :class:`FunctionInfo`.
        node:
            The acquisition call.
        parents:
            Child → parent map of the function body.
        released:
            Names from :func:`_released_locals`.
        described:
            Display form of the acquisition call.
        kind:
            Resource description from :func:`_acquisition_kind`.

        Yields
        ------
        Finding
        """
        statement, direct = self._enclosing_statement(node, parents)
        if isinstance(statement, ast.Return) and direct:
            return  # ownership passes to the caller
        if isinstance(statement, (ast.Assign, ast.AnnAssign)) and direct:
            targets = (
                statement.targets if isinstance(statement, ast.Assign)
                else [statement.target]
            )
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                name = targets[0].id
                if name in released:
                    return
                yield self._finding(
                    info, node,
                    _RES001_LOCAL_MESSAGE.format(
                        described=described, kind=kind, name=name,
                        function=function.qualname,
                    ),
                    described, kind, f"bound to local {name!r}",
                )
                return
            if len(targets) == 1 and isinstance(targets[0], ast.Attribute):
                yield from self._check_attribute_store(
                    info, function, node, targets[0], described, kind
                )
                return
        if isinstance(statement, ast.Expr) and direct:
            yield self._finding(
                info, node,
                _RES001_DROPPED_MESSAGE.format(
                    described=described, kind=kind
                ),
                described, kind, "result discarded",
            )
            return
        yield self._finding(
            info, node,
            _RES001_INLINE_MESSAGE.format(described=described, kind=kind),
            described, kind, "consumed inline, never bound",
        )

    def _check_attribute_store(
        self, info, function, node, target, described, kind
    ) -> Iterator[Finding]:
        """Judge an acquisition stored straight into an attribute.

        A ``self.x = open(...)`` store is the lazy-handle pattern and
        is safe exactly when the class runs a lifecycle method; a
        store into any *other* object is an ownership transfer the
        per-function analysis accepts.

        Parameters
        ----------
        info:
            The enclosing :class:`ModuleInfo`.
        function:
            The enclosing :class:`FunctionInfo`.
        node:
            The acquisition call.
        target:
            The attribute target node.
        described, kind:
            Display strings for the finding.

        Yields
        ------
        Finding
        """
        receiver = target.value
        if not (
            isinstance(receiver, ast.Name)
            and receiver.id in ("self", "cls")
        ):
            return
        class_name = function.class_name
        if class_name and _class_owns_lifecycle(info, class_name):
            return
        yield self._finding(
            info, node,
            _RES001_SELF_MESSAGE.format(
                described=described, kind=kind,
                class_name=class_name or "<module scope>",
            ),
            described, kind,
            f"stored on {class_name or 'self'} without a lifecycle",
        )

    @staticmethod
    def _enclosing_statement(node, parents):
        """The statement owning ``node`` and whether it owns it directly.

        Parameters
        ----------
        node:
            The acquisition call.
        parents:
            Child → parent map.

        Returns
        -------
        (ast.stmt or None, bool)
            The nearest enclosing statement, and ``True`` when the
            call is that statement's immediate value (not nested in a
            larger expression).
        """
        current = node
        hops = 0
        while True:
            parent = parents.get(current)
            if parent is None or isinstance(parent, ast.stmt):
                return parent, hops == 0
            current = parent
            hops += 1

    def _finding(self, info, node, message, described, kind, fate) -> Finding:
        """Build a finding with an acquisition→leak provenance trace.

        Parameters
        ----------
        info:
            :class:`ModuleInfo` of the offending module.
        node:
            The acquisition call.
        message:
            Violation message.
        described:
            Display form of the acquisition.
        kind:
            Resource description.
        fate:
            What happened to the handle instead of a release.

        Returns
        -------
        Finding
        """
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            trace=(
                f"acquire: {described} → {kind}",
                f"→ {fate}",
                "→ no release on any path",
            ),
        )

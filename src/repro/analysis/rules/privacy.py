"""Privacy rules: the statistics-only invariant and telemetry payloads.

PRIV-001 — the condensation "statistics only" invariant.

Paper §2: a condensed group retains only ``(Fs, Sc, n)`` — first-order
sums, second-order sums, and a count.  Raw member records must never
outlive the condensation step.  In ``repro/core``, ``repro/stream``,
``repro/parallel`` (the sharded engine ships raw shards to workers, so
it is held to the same retention rules) and ``repro/durability`` (the
WAL and checkpoints persist condenser state to disk, where a leaked
record would outlive the process) this rule therefore flags:

* attribute assignments that stash record batches on objects — either
  because the attribute is named like a record store (``records``,
  ``members``, ``samples``, ...) or because the assigned value is
  derived from a record-batch name (``records``, ``data``, ``X``, ...);
* ``.append()``/``.extend()`` of record-like values onto attributes;
* serialization of anything from those modules (``pickle``,
  ``np.save*``, ``.tofile``, ...) — persistence is ``repro/io``'s job,
  applied to models that already contain statistics only.

Two repo-aware carve-outs keep the rule honest: classes named
``*Stream``/``*Source`` model the trusted-side *input* feed (upstream
of condensation, where raw data legitimately lives), and transient
buffers with an explicit trust-model justification may use a
``# repro-lint: disable=PRIV-001`` suppression.

PRIV-002 — telemetry payloads must be scalar aggregates.  The
``repro.telemetry`` subsystem records counts, timings, and sizes; it
must never be handed a record batch as a metric value, label value, or
span attribute, or the observability side-channel would leak exactly
what condensation is built to discard.  The runtime guard
(``repro.telemetry.check_scalar``) rejects arrays when telemetry is
enabled; this rule catches the same mistake statically, including on
paths only exercised with telemetry disabled (where the no-op pipeline
drops payloads unchecked).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import dotted_name
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

# Attribute-name segments that read as "a store of raw records".
_RECORD_ATTR_SEGMENTS = frozenset({
    "record", "member", "row", "raw", "sample", "point", "batch",
    "buffer", "observation", "instance",
})

# Local names whose value is, by repo convention, a raw record batch.
_RECORD_VALUE_NAMES = frozenset({
    "record", "records", "data", "X", "rows", "batch", "samples",
    "points", "members", "observations",
})

# Methods that pass their receiver's data through unchanged.
_PASSTHROUGH_METHODS = frozenset({"copy", "astype", "reshape", "view"})

# numpy constructors that wrap or stack record arrays without reducing.
_WRAPPING_CALLS = frozenset({
    "asarray", "array", "copy", "atleast_2d", "vstack", "hstack",
    "stack", "concatenate", "column_stack", "ascontiguousarray",
})

_SERIALIZER_MODULES = frozenset({
    "pickle", "cPickle", "dill", "joblib", "shelve", "marshal",
})
_NUMPY_SAVERS = frozenset({"save", "savez", "savez_compressed", "savetxt"})

_RETENTION_MESSAGE = (
    "possible raw-record retention: {detail}; condensed objects may keep "
    "only (Fs, Sc, n) statistics (paper §2) — derive aggregates instead, "
    "or add a justified '# repro-lint: disable=PRIV-001' if the storage "
    "is transient trusted-side state"
)
_SERIALIZE_MESSAGE = (
    "{detail} inside repro/{package} — privacy-critical modules must not "
    "serialize record batches; persistence belongs in repro/io and "
    "operates on statistics-only models"
)


def _exempt_class(name: str) -> bool:
    """Whether a class models the trusted-side input feed."""
    return name.endswith("Stream") or name.endswith("Source")


def _attr_segments(attribute: str) -> set:
    """Singular, lowercased underscore-segments of an attribute name."""
    segments = set()
    for segment in attribute.lower().strip("_").split("_"):
        segments.add(segment)
        if segment.endswith("s"):
            segments.add(segment[:-1])
    return segments


def _value_root(node: ast.AST) -> str | None:
    """Trace an expression to the bare name it wraps, if any."""
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            node = node.generators[0].iter
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _PASSTHROUGH_METHODS
            ):
                node = func.value
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _WRAPPING_CALLS
                and node.args
            ):
                node = node.args[0]
            elif (
                isinstance(func, ast.Name)
                and func.id in _WRAPPING_CALLS
                and node.args
            ):
                node = node.args[0]
            else:
                return None
        elif isinstance(node, (ast.List, ast.Tuple)) and len(node.elts) == 1:
            node = node.elts[0]
        else:
            return None


def _is_innocent(node: ast.AST) -> bool:
    """Whether a value is clearly not a record batch (count, flag, ...)."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_innocent(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name in {"len", "int", "float", "bool", "str"}:
            return True
        if name in {"list", "dict", "set", "tuple", "deque"} and not node.args:
            return True
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.Tuple)):
        return not getattr(node, "elts", None) and not getattr(
            node, "keys", None
        )
    return False


@register
class StatisticsOnlyRule(Rule):
    """Enforce the statistics-only invariant in privacy-critical modules."""

    rule_id = "PRIV-001"
    summary = (
        "repro/core, repro/stream, repro/parallel, repro/durability "
        "and repro/serve must not retain or serialize raw record "
        "batches — groups keep only (Fs, Sc, n)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Scan one module for record-retention violations.

        Parameters
        ----------
        module:
            Parsed module context.

        Yields
        ------
        Finding
        """
        if not module.is_privacy_critical or module.is_test_module:
            return
        package = next(
            (name for name in ("core", "stream", "parallel",
                          "durability", "serve")
             if module.in_repro_package(name)),
            "core",
        )
        for node in module.tree.body:
            yield from self._visit(module, node, package, exempt=False)

    def _visit(self, module, node, package, exempt) -> Iterator[Finding]:
        """Visit one node and its children, tracking class exemptions."""
        if isinstance(node, ast.ClassDef):
            exempt = exempt or _exempt_class(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            yield from self._check_import(module, node, package)
        elif not exempt:
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                yield from self._check_assignment(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, package)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(module, child, package, exempt)

    def _check_import(self, module, node, package) -> Iterator[Finding]:
        """Flag serializer imports inside privacy-critical packages."""
        if isinstance(node, ast.Import):
            names = [alias.name.split(".")[0] for alias in node.names]
        else:
            names = [(node.module or "").split(".")[0]]
        for name in names:
            if name in _SERIALIZER_MODULES:
                yield self.finding(
                    module, node,
                    _SERIALIZE_MESSAGE.format(
                        detail=f"import of {name!r}", package=package
                    ),
                )

    def _check_assignment(self, module, node) -> Iterator[Finding]:
        """Flag record-like attribute assignments."""
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        else:
            targets, value = [node.target], node.value
        if value is None or _is_innocent(value):
            return
        root = _value_root(value)
        # ``self.first_order += record`` folds a record into the sums —
        # that *is* the paper's aggregation, not retention — so augmented
        # assignments are judged by attribute name only.
        value_is_records = (
            root in _RECORD_VALUE_NAMES
            and not isinstance(node, ast.AugAssign)
        )
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            name_matches = bool(
                _attr_segments(target.attr) & _RECORD_ATTR_SEGMENTS
            )
            if name_matches or value_is_records:
                if name_matches:
                    detail = (
                        f"assignment to record-store attribute "
                        f"{target.attr!r}"
                    )
                else:
                    detail = (
                        f"attribute {target.attr!r} is assigned the raw "
                        f"record batch {root!r}"
                    )
                yield self.finding(module, node, _RETENTION_MESSAGE.format(
                    detail=detail
                ))

    def _check_call(self, module, node, package) -> Iterator[Finding]:
        """Flag record appends onto attributes and serialization calls."""
        func = node.func
        if isinstance(func, ast.Attribute):
            # <obj>.<attr>.append(records) / .extend / .appendleft
            if (
                func.attr in {"append", "extend", "appendleft"}
                and isinstance(func.value, ast.Attribute)
                and node.args
            ):
                store = func.value.attr
                root = _value_root(node.args[0])
                if (
                    _attr_segments(store) & _RECORD_ATTR_SEGMENTS
                    or root in _RECORD_VALUE_NAMES
                ):
                    yield self.finding(
                        module, node,
                        _RETENTION_MESSAGE.format(
                            detail=f"{store}.{func.attr}() accumulates "
                                   f"raw records"
                        ),
                    )
            if func.attr == "tofile":
                yield self.finding(
                    module, node,
                    _SERIALIZE_MESSAGE.format(
                        detail="ndarray.tofile() call", package=package
                    ),
                )
        name = dotted_name(func)
        if name is None:
            return
        parts = name.split(".")
        if parts[0] in _SERIALIZER_MODULES and len(parts) > 1:
            yield self.finding(
                module, node,
                _SERIALIZE_MESSAGE.format(
                    detail=f"{name}() call", package=package
                ),
            )
        if (
            len(parts) == 2
            and parts[0] in {"np", "numpy"}
            and parts[1] in _NUMPY_SAVERS
        ):
            yield self.finding(
                module, node,
                _SERIALIZE_MESSAGE.format(
                    detail=f"{name}() call", package=package
                ),
            )


# Module-level telemetry entry points whose payload args we audit.
_TELEMETRY_FUNCTIONS = frozenset({
    "counter_inc", "gauge_set", "histogram_observe", "span",
})

# Metric/span methods with payload args; generic names, so they are
# only audited on telemetry-looking receivers (except set_attribute,
# which is unique to spans).
_TELEMETRY_METHODS = frozenset({"inc", "set", "observe", "set_attribute"})

_TELEMETRY_RECEIVER_HINTS = (
    "telemetry", "span", "counter", "gauge", "histogram", "metric",
    "pipeline",
)

_TELEMETRY_MESSAGE = (
    "telemetry payload leak: {detail} in a call to {api} — metric "
    "values, labels, and span attributes must be scalar aggregates "
    "(counts, timings, sizes), never record data; pass len()/shape "
    "counts instead"
)


def _telemetry_receiver(node: ast.AST) -> bool:
    """Whether a method receiver looks like a telemetry object."""
    name = dotted_name(node)
    if name is None:
        return False
    last = name.split(".")[-1].lower()
    return any(hint in last for hint in _TELEMETRY_RECEIVER_HINTS)


@register
class TelemetryPayloadRule(Rule):
    """Keep record batches out of telemetry in privacy-critical modules."""

    rule_id = "PRIV-002"
    summary = (
        "telemetry call sites in repro/core, repro/stream, "
        "repro/parallel, repro/durability and repro/serve must pass "
        "only scalar aggregates — never record arrays — as values, "
        "labels, or span attributes"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Scan one module for record-carrying telemetry payloads.

        Parameters
        ----------
        module:
            Parsed module context.

        Yields
        ------
        Finding
        """
        if not module.is_privacy_critical or module.is_test_module:
            return
        aliases, functions = self._telemetry_bindings(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases,
                                            functions)

    def _telemetry_bindings(self, module):
        """Names bound to the telemetry module / its entry points."""
        aliases = set()
        functions = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "repro":
                    for alias in node.names:
                        if alias.name == "telemetry":
                            aliases.add(alias.asname or alias.name)
                elif node.module and node.module.startswith(
                    "repro.telemetry"
                ):
                    for alias in node.names:
                        if alias.name in _TELEMETRY_FUNCTIONS:
                            functions[alias.asname or alias.name] = (
                                alias.name
                            )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.telemetry":
                        aliases.add(alias.asname or alias.name)
        return aliases, functions

    def _check_call(self, module, node, aliases, functions
                    ) -> Iterator[Finding]:
        """Flag record-like payloads in one telemetry call."""
        api = self._telemetry_api(node.func, aliases, functions)
        if api is None:
            return
        for value in list(node.args) + [
            keyword.value for keyword in node.keywords
        ]:
            if isinstance(value, ast.Dict):
                payloads = [entry for entry in value.values
                            if entry is not None]
            else:
                payloads = [value]
            for payload in payloads:
                if _is_innocent(payload):
                    continue
                root = _value_root(payload)
                if root in _RECORD_VALUE_NAMES:
                    yield self.finding(
                        module, node,
                        _TELEMETRY_MESSAGE.format(
                            detail=f"record batch {root!r}", api=api
                        ),
                    )

    def _telemetry_api(self, func, aliases, functions) -> str | None:
        """Resolve a call target to a telemetry API name, if it is one."""
        if isinstance(func, ast.Name):
            return functions.get(func.id)
        name = dotted_name(func)
        if name is not None and "." in name:
            prefix, leaf = name.rsplit(".", 1)
            if prefix in aliases and leaf in _TELEMETRY_FUNCTIONS:
                return f"{name}()"
        if isinstance(func, ast.Attribute):
            if func.attr == "set_attribute":
                return "Span.set_attribute()"
            if (
                func.attr in _TELEMETRY_METHODS
                and _telemetry_receiver(func.value)
            ):
                return f"{func.attr}()"
        return None

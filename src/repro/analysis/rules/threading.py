"""THR-001..004 — lock discipline of the serving plane.

The condensation groups of Aggarwal & Yu are indivisible multi-field
statistics (count, sum, co-moments, eigenstructure): a thread that
observes half an update reads a group that never existed, and the
corruption propagates silently into anonymized output.  The serving
plane (``repro.serve``) therefore runs every public entry point under
locks — and this family checks, statically, that the discipline holds:

* **THR-001** — a shared mutable attribute reachable from two or more
  thread roots is accessed without the lock that guards its other
  accesses.  The guard is *inferred* (majority of must-held lock sets),
  so the rule flags the odd one out instead of demanding annotations.
* **THR-002** — the acquisition-order graph contains a cycle: two
  threads can each hold one lock of the cycle while waiting for the
  next, and the service deadlocks.
* **THR-003** — a blocking operation (``fsync``, ``checkpoint()``,
  sockets/HTTP, ``time.sleep``) executes while a lock is possibly held
  on a root-reachable path; every thread contending for that lock
  stalls behind the I/O.  This is the static form of the latency
  hazard behind the back-pressure roadmap item.
* **THR-004** — a check-then-act split: one ``with lock:`` region
  reads an attribute, a *later* region of the same function writes it,
  and the lock is the attribute's inferred guard.  The value checked
  can change between the regions, so the pair must be one critical
  section.

All four ride :mod:`repro.analysis.project.locks`; see that module for
the engine's scope and approximations.  Findings carry the shortest
discovered call path from a thread root so the report reads as a
repro recipe, and every rule supports the standard suppression
comments (``# repro-lint: disable-next=THR-003 -- justification``) for
sites where blocking under a narrow lock is the documented contract.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register


def lock_sets(project):
    """Memoized engine accessor (late import: the engine pulls rule
    helpers, so a module-level import would be circular).

    Parameters
    ----------
    project:
        The project index.

    Returns
    -------
    repro.analysis.project.locks.LockSetEngine
    """
    from repro.analysis.project.locks import lock_sets as _lock_sets

    return _lock_sets(project)

_THR001_MESSAGE = (
    "{kind} of shared attribute {attr!r} without {lock}, which guards "
    "{guarded} of its {total} concurrent accesses; a torn view of "
    "condensation statistics silently corrupts anonymized output — "
    "take {lock} around this access or suppress with the alternate "
    "discipline spelled out"
)
_THR002_MESSAGE = (
    "lock-order cycle {cycle}: threads acquiring these locks in "
    "different orders can each hold one side and wait forever on the "
    "other — pick one global acquisition order"
)
_THR003_MESSAGE = (
    "{operation} runs while holding {locks}; every thread contending "
    "for the lock stalls behind this blocking call — move the I/O "
    "outside the critical section or hand it to a background task"
)
_THR004_MESSAGE = (
    "check-then-act on {attr!r}: read under {lock} at line {read_line}, "
    "dependent write in a separate {lock} region; the value can change "
    "between the two critical sections — merge them into one"
)


class _ThreadingRule(ProjectRule):
    """Shared scaffolding for the THR family."""

    def _finding(self, project, function, node, message,
                 trace) -> Finding:
        """Build a finding located in ``function``'s module.

        Parameters
        ----------
        project:
            The project index.
        function:
            Qualname of the function containing ``node``.
        node:
            Offending AST node.
        message:
            Violation message.
        trace:
            Root-to-site hop descriptions.

        Returns
        -------
        Finding
        """
        info = project.modules[project.functions[function].module]
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            trace=tuple(trace),
        )

    @staticmethod
    def _path_trace(engine, path) -> list:
        """Render a root→site call path as trace hops."""
        if not path:
            return []
        root = engine.roots.get(path[0])
        kind = root.kind if root is not None else "thread"
        hops = [f"{kind} root {path[0]}()"]
        hops += [f"→ {qualname}()" for qualname in path[1:]]
        return hops


@register
class UnguardedSharedAccessRule(_ThreadingRule):
    """Shared attributes must be accessed under their inferred guard."""

    rule_id = "THR-001"
    summary = (
        "shared serve-plane attributes reachable from multiple thread "
        "roots must be accessed under their guarding lock"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Flag accesses missing the majority-inferred guard.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        engine = lock_sets(project)
        guards = engine.guards()
        for access in engine.accesses:
            inferred = guards.get(access.attr_id)
            if inferred is None:
                continue
            lock_id, guarded, total = inferred
            if lock_id in access.must_held:
                continue
            roots = engine.attr_roots.get(access.attr_id, ())
            if len(roots) < 2:
                continue
            attr = access.attr_id.rsplit(".", 1)[-1]
            display = engine.display(lock_id)
            trace = self._path_trace(engine, access.path)
            trace.append(
                f"guard: {display} held on {guarded}/{total} "
                f"accesses of {attr!r}"
            )
            yield self._finding(
                project, access.function, access.node,
                _THR001_MESSAGE.format(
                    kind="write" if access.write else "read",
                    attr=attr, lock=display,
                    guarded=guarded, total=total,
                ),
                trace,
            )


@register
class LockOrderCycleRule(_ThreadingRule):
    """The acquisition graph must stay acyclic."""

    rule_id = "THR-002"
    summary = (
        "locks must be acquired in one global order (no cycles in the "
        "holds-while-acquiring graph)"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Report one finding per strongly-connected lock cycle.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        engine = lock_sets(project)
        graph: dict = {}
        for edge in engine.order_edges:
            graph.setdefault(edge.first, set()).add(edge.second)
            graph.setdefault(edge.second, set())
        for component in _cycle_components(graph):
            members = sorted(component)
            edges = [
                edge for edge in engine.order_edges
                if edge.first in component and edge.second in component
            ]
            if not edges:
                continue
            cycle = " → ".join(
                engine.display(lock_id) for lock_id in members
            )
            cycle += f" → {engine.display(members[0])}"
            trace = [
                f"holding {engine.display(edge.first)}, acquires "
                f"{engine.display(edge.second)} in {edge.function}() "
                f"(line {getattr(edge.node, 'lineno', '?')})"
                for edge in edges
            ]
            yield self._finding(
                project, edges[0].function, edges[0].node,
                _THR002_MESSAGE.format(cycle=cycle),
                trace,
            )


@register
class BlockingUnderLockRule(_ThreadingRule):
    """No blocking I/O while holding a lock on a reachable path."""

    rule_id = "THR-003"
    summary = (
        "blocking operations (fsync, checkpoint, sockets, sleep) must "
        "not run while a lock is held on a serve-reachable path"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Flag blocking calls whose may-held lock set is non-empty.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        engine = lock_sets(project)
        for site in engine.blocking_sites:
            if not site.held:
                continue
            locks = ", ".join(
                engine.display(lock_id) for lock_id in sorted(site.held)
            )
            trace = self._path_trace(engine, site.path)
            trace.append(f"held here: {locks}")
            yield self._finding(
                project, site.function, site.node,
                _THR003_MESSAGE.format(
                    operation=site.description, locks=locks,
                ),
                trace,
            )


@register
class CheckThenActRule(_ThreadingRule):
    """A guarded read and its dependent write must share one region."""

    rule_id = "THR-004"
    summary = (
        "a guarded read and the write that depends on it must not "
        "straddle a lock release (check-then-act atomicity)"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Flag read/write pairs split across same-lock regions.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        engine = lock_sets(project)
        guards = engine.guards()
        for qualname in sorted(engine.regions):
            regions = engine.regions[qualname]
            by_lock: dict = {}
            for region in regions:
                by_lock.setdefault(region.lock_id, []).append(region)
            for lock_id in sorted(by_lock):
                chain = by_lock[lock_id]
                if len(chain) < 2:
                    continue
                for index, earlier in enumerate(chain[:-1]):
                    for later in chain[index + 1:]:
                        for attr_id in sorted(
                            earlier.reads & later.writes
                        ):
                            inferred = guards.get(attr_id)
                            if inferred is None \
                                    or inferred[0] != lock_id:
                                continue
                            attr = attr_id.rsplit(".", 1)[-1]
                            display = engine.display(lock_id)
                            yield self._finding(
                                project, qualname, later.node,
                                _THR004_MESSAGE.format(
                                    attr=attr, lock=display,
                                    read_line=getattr(
                                        earlier.node, "lineno", "?"
                                    ),
                                ),
                                (
                                    f"in {qualname}()",
                                    f"→ read region at line "
                                    f"{getattr(earlier.node, 'lineno', '?')}",
                                    f"→ write region at line "
                                    f"{getattr(later.node, 'lineno', '?')}",
                                ),
                            )


def _cycle_components(graph) -> list:
    """Strongly-connected components that contain a cycle.

    Iterative Tarjan over the lock graph; returns components with more
    than one node, plus single nodes with a self-edge (the engine never
    emits self-edges, so in practice only true multi-lock cycles).

    Parameters
    ----------
    graph:
        Lock id → set of successor lock ids.

    Returns
    -------
    list of frozenset
        Cyclic components in deterministic (sorted-member) order.
    """
    index_counter = [0]
    indices: dict = {}
    lowlinks: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list = []

    for start in sorted(graph):
        if start in indices:
            continue
        work = [(start, iter(sorted(graph[start])))]
        indices[start] = lowlinks[start] = index_counter[0]
        index_counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = \
                        index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(graph[successor])))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(
                        lowlinks[node], indices[successor]
                    )
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(
                    lowlinks[parent], lowlinks[node]
                )
            if lowlinks[node] == indices[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1 or any(
                    member in graph.get(member, ())
                    for member in component
                ):
                    components.append(frozenset(component))
    return sorted(components, key=lambda c: sorted(c))

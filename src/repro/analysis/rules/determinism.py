"""DET-001/002/003 — worker determinism contract.

``repro.parallel`` promises that sharded condensation is a pure
refactoring of the serial algorithm: same seed → same groups,
regardless of worker count or scheduling.  That promise dies the moment
code *reachable from a worker function* consults ambient process state.
These three project rules walk the call graph from every function handed
to an executor pool (``pool.map(_condense_shard, ...)``) and forbid,
anywhere in that closure:

* **DET-001** — wall-clock / process-identity / environment reads
  (``time.time``, ``datetime.now``, ``os.getpid``, ``os.environ``...).
  Monotonic timers (``perf_counter``, ``monotonic``) and
  ``os.cpu_count`` stay legal: they never influence results, only
  measurement and sizing.
* **DET-002** — unseeded randomness: numpy's global-state RNG
  functions, unseeded ``default_rng()``, and any stdlib ``random``
  call.  ``repro/linalg/rng.py`` is exempt — it is the sanctioned
  constructor and its unseeded branch is the documented opt-in.
* **DET-003** — mutation of module-level state (``global`` writes,
  stores through module-level containers, mutator method calls on
  them), which makes results depend on shard interleaving.

``repro.telemetry`` modules are exempt from all three: observability
reads clocks and bumps shared counters by design, and never feeds back
into condensation results.

Each finding carries the shortest worker→function call path in its
trace, so a violation three calls deep still reads as one story.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import call_argument_count, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register
from repro.analysis.rules.rng import NON_GLOBAL_ATTRIBUTES

#: Resolved call targets that read the wall clock or process identity.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})
_PROCESS_CALLS = frozenset({
    "os.getpid", "os.getppid", "os.getlogin", "os.uname",
    "socket.gethostname", "platform.node",
})
_ENV_CALLS = frozenset({"os.getenv", "os.environb"})
#: ``os.environ`` is forbidden as a *value* (subscripts, ``.get`` ...).
_ENV_VALUES = ("os.environ",)

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "update", "insert", "remove", "pop",
    "popitem", "clear", "setdefault", "appendleft", "sort", "reverse",
    "discard",
})

_DET001_MESSAGE = (
    "{name}() reads ambient process state inside code reachable from "
    "worker {root}(); results must depend only on (records, seed), so "
    "hoist the read out of the worker closure (perf_counter/monotonic "
    "are fine for timing)"
)
_DET002_RANDOM_MESSAGE = (
    "{name}() draws unseeded randomness inside code reachable from "
    "worker {root}(); thread a Generator spawned via "
    "repro.linalg.rng.spawn_seed_sequences through the shard task instead"
)
_DET003_MESSAGE = (
    "{described} mutates module-level state {state!r} inside code "
    "reachable from worker {root}(); shared state makes results depend "
    "on shard interleaving — return the value and merge it in the driver"
)


def _worker_reachable(project):
    """Enumerate functions reachable from executor worker roots.

    Shared walk for the three DET rules: resolves the worker entry
    points, BFS-expands the call graph, and filters out the exempt
    modules (telemetry everywhere; callers apply rule-specific extras).

    Parameters
    ----------
    project:
        The :class:`repro.analysis.project.ProjectIndex`.

    Yields
    ------
    tuple
        ``(function, module_info, call_path)`` per reachable function,
        where ``call_path`` is the shortest root→function qualname list.
    """
    roots = project.worker_roots()
    if not roots:
        return
    for qualname, path in sorted(project.reachable_from(roots).items()):
        function = project.functions.get(qualname)
        if function is None:
            continue
        info = project.modules[function.module]
        if info.name.startswith("repro.telemetry"):
            continue
        yield function, info, path


def _path_trace(path) -> tuple:
    """Render a worker call path as finding trace hops.

    Parameters
    ----------
    path:
        Qualname list, worker root first.

    Returns
    -------
    tuple of str
        One hop description per call-path entry.
    """
    hops = [f"worker {path[0]}()"]
    hops += [f"→ {qualname}()" for qualname in path[1:]]
    return tuple(hops)


class _WorkerRule(ProjectRule):
    """Shared scaffolding for the DET rule family."""

    def _finding(self, info, node, message, path) -> Finding:
        """Build a finding inside a worker-reachable function.

        Parameters
        ----------
        info:
            :class:`ModuleInfo` of the offending module.
        node:
            Offending AST node.
        message:
            Violation message (line-number free, for baseline
            stability).
        path:
            Worker→function call path.

        Returns
        -------
        Finding
        """
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            trace=_path_trace(path),
        )


@register
class WorkerAmbientStateRule(_WorkerRule):
    """Forbid wall-clock / PID / environment reads in worker closures."""

    rule_id = "DET-001"
    summary = (
        "code reachable from parallel worker functions must not read "
        "wall clock, process identity or environment variables"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Scan worker-reachable functions for ambient-state reads.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        forbidden = _WALL_CLOCK_CALLS | _PROCESS_CALLS | _ENV_CALLS
        for function, info, path in _worker_reachable(project):
            for node in ast.walk(function.node):
                resolved = None
                if isinstance(node, ast.Call):
                    resolved = _resolve(project, info, node.func)
                    if resolved in forbidden:
                        yield self._finding(
                            info, node,
                            _DET001_MESSAGE.format(
                                name=resolved, root=path[0]
                            ),
                            path,
                        )
                        continue
                elif isinstance(node, (ast.Attribute, ast.Name)):
                    resolved = _resolve(project, info, node)
                if resolved is not None and resolved.startswith(_ENV_VALUES):
                    yield self._finding(
                        info, node,
                        _DET001_MESSAGE.format(
                            name="os.environ", root=path[0]
                        ),
                        path,
                    )


@register
class WorkerUnseededRandomnessRule(_WorkerRule):
    """Forbid unseeded RNG use in worker closures."""

    rule_id = "DET-002"
    summary = (
        "code reachable from parallel worker functions must not call "
        "unseeded RNG (numpy global state, bare default_rng, stdlib "
        "random)"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Scan worker-reachable functions for unseeded RNG calls.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        for function, info, path in _worker_reachable(project):
            if info.context.is_rng_module:
                continue
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = _resolve(project, info, node.func)
                if resolved is None:
                    continue
                name = self._violating_name(resolved, node)
                if name is not None:
                    yield self._finding(
                        info, node,
                        _DET002_RANDOM_MESSAGE.format(
                            name=name, root=path[0]
                        ),
                        path,
                    )

    def _violating_name(self, resolved: str, node) -> str | None:
        """Classify a resolved call as an unseeded-RNG violation.

        Parameters
        ----------
        resolved:
            Fully qualified call target.
        node:
            The call node (for argument counting).

        Returns
        -------
        str or None
            Display name of the violation, or ``None`` when legal.
        """
        if resolved == "numpy.random.default_rng":
            return resolved if call_argument_count(node) == 0 else None
        if resolved.startswith("numpy.random."):
            attribute = resolved.rsplit(".", 1)[-1]
            return resolved if attribute not in NON_GLOBAL_ATTRIBUTES else None
        if resolved == "random" or resolved.startswith("random."):
            return resolved
        return None


@register
class WorkerSharedStateRule(_WorkerRule):
    """Forbid module-level state mutation in worker closures."""

    rule_id = "DET-003"
    summary = (
        "code reachable from parallel worker functions must not mutate "
        "module-level state"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Scan worker-reachable functions for shared-state mutation.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        for function, info, path in _worker_reachable(project):
            local_names = set(function.params)
            declared_global = set()
            for node in ast.walk(function.node):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    local_names.add(node.id)
            local_names -= declared_global
            yield from self._check_function(
                function, info, path, local_names, declared_global
            )

    def _check_function(
        self, function, info, path, local_names, declared_global
    ) -> Iterator[Finding]:
        """Emit findings for one reachable function.

        Parameters
        ----------
        function:
            The reachable :class:`FunctionInfo`.
        info:
            Its :class:`ModuleInfo`.
        path:
            Worker→function call path.
        local_names:
            Names bound locally (parameters and plain stores).
        declared_global:
            Names declared ``global`` in the function body.

        Yields
        ------
        Finding
        """
        module_state = info.module_level_names

        def shared_root(expression) -> str | None:
            root = expression
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if not isinstance(root, ast.Name):
                return None
            name = root.id
            if name in declared_global and name in module_state:
                return name
            if name in local_names:
                return None
            return name if name in module_state else None

        for node in ast.walk(function.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in declared_global and node.id in module_state:
                    yield self._finding(
                        info, node,
                        _DET003_MESSAGE.format(
                            described=f"global assignment in {function.qualname}()",
                            state=node.id, root=path[0],
                        ),
                        path,
                    )
            elif isinstance(node, (ast.Subscript, ast.Attribute)) and (
                isinstance(node.ctx, (ast.Store, ast.Del))
            ):
                name = shared_root(node)
                if name is not None:
                    yield self._finding(
                        info, node,
                        _DET003_MESSAGE.format(
                            described=f"store through {name} in "
                                      f"{function.qualname}()",
                            state=name, root=path[0],
                        ),
                        path,
                    )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ) and node.func.attr in _MUTATOR_METHODS:
                name = shared_root(node.func.value)
                if name is not None:
                    yield self._finding(
                        info, node,
                        _DET003_MESSAGE.format(
                            described=f"{name}.{node.func.attr}() call",
                            state=name, root=path[0],
                        ),
                        path,
                    )


def _resolve(project, info, expression) -> str | None:
    """Resolve a call/attribute expression to a fully qualified name.

    Parameters
    ----------
    project:
        The project index.
    info:
        Module the expression appears in.
    expression:
        AST expression (call target, attribute or name).

    Returns
    -------
    str or None
        The resolved dotted name, or ``None`` when it does not resolve
        through the module's imports.
    """
    dotted = dotted_name(expression)
    if dotted is None:
        return None
    return project.resolve(info, dotted)

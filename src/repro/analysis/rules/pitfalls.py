"""PY-001/002/003 — classic Python pitfalls with numeric consequences.

* **PY-001** — mutable default arguments.  A ``def f(x, cache={})``
  shares one dict across every call; in an experiment harness that
  silently couples sweeps that must be independent.
* **PY-002** — bare ``except:``.  Swallows ``KeyboardInterrupt`` and
  ``SystemExit`` and hides the numeric errors (singular covariance,
  shape mismatches) the reproduction needs to surface loudly.
* **PY-003** — ``==``/``!=`` against a non-zero float literal.
  Floating-point round-off makes such comparisons flaky; use a
  tolerance (``math.isclose``/``np.isclose``) instead.  Comparisons
  against ``0.0`` are exempt: exact zero is representable, and the
  repo's ``x == 0.0`` guards test for *structurally* zero quantities
  (empty spread, zero norm) before dividing — a tolerance there would
  change semantics.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
    "OrderedDict",
})


@register
class MutableDefaultRule(Rule):
    """Flag mutable default argument values."""

    rule_id = "PY-001"
    summary = "no mutable default arguments (list/dict/set/... literals)"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Scan function signatures for mutable defaults.

        Parameters
        ----------
        module:
            Parsed module context.

        Yields
        ------
        Finding
        """
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module, default,
                        f"mutable default argument in {node.name}(); the "
                        f"value is shared across calls — default to None "
                        f"and create the container inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        """Whether a default-value expression builds a mutable container."""
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CONSTRUCTORS
        return False


@register
class BareExceptRule(Rule):
    """Flag bare ``except:`` handlers."""

    rule_id = "PY-002"
    summary = "no bare except: clauses — name the exceptions you expect"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Scan exception handlers for missing exception types.

        Parameters
        ----------
        module:
            Parsed module context.

        Yields
        ------
        Finding
        """
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module, node,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit "
                    "and masks numeric failures; catch the specific "
                    "exceptions you expect",
                )


@register
class FloatEqualityRule(Rule):
    """Flag equality comparisons against non-zero float literals."""

    rule_id = "PY-003"
    summary = (
        "no ==/!= against non-zero float literals — use a tolerance "
        "(exact-zero guards are exempt)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Scan comparisons for float-literal equality.

        Parameters
        ----------
        module:
            Parsed module context.

        Yields
        ------
        Finding
        """
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for operator, left, right in zip(
                node.ops, operands[:-1], operands[1:]
            ):
                if not isinstance(operator, (ast.Eq, ast.NotEq)):
                    continue
                for operand in (left, right):
                    if self._is_nonzero_float(operand):
                        yield self.finding(
                            module, node,
                            "==/!= against a non-zero float literal is "
                            "round-off fragile; compare with math.isclose "
                            "or numpy.isclose and an explicit tolerance",
                        )
                        break

    @staticmethod
    def _is_nonzero_float(node: ast.AST) -> bool:
        """Whether a node is a non-zero float constant (incl. negated)."""
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            node = node.operand
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value != 0.0
        )

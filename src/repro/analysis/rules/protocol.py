"""Shared machinery for the protocol rule families (FS/CONC/RES).

The durability-protocol, concurrency-safety and resource-lifetime rules
all reason about the same handful of syntactic shapes — ``open()``-style
acquisitions, ``os.replace`` renames, executor submissions — over the
same whole-program scopes.  This module centralizes:

* **scope enumeration** — :func:`durability_reachable` walks the call
  graph outward from every function defined in ``repro.durability``
  (the same BFS the DET rules run from worker roots), and
  :func:`submission_sites` finds every ``pool.submit/map/apply_async``
  hand-off in the parallel package;
* **acquisition parsing** — classifying a call as an ``open()`` (with
  its mode string) or as the construction of an owning durability
  object (``WriteAheadLog``, ``DurabilityManager``);
* **temp-path provenance** — deciding whether a written path is a
  scratch location (``*.tmp`` suffix, ``tempfile`` call, temp-ish
  variable name) destined for an atomic ``os.replace``.

Everything here is deliberately approximate in the same *safe*
directions as the rest of the project pass (see
``docs/static_analysis.md``): resolution failures mean "not in scope",
never a spurious finding.
"""

from __future__ import annotations

import ast

from repro.analysis.astutils import dotted_name

#: ``open()`` mode first-characters that (re)write the target file.
WRITE_MODE_CHARS = ("w", "x")

#: ``open()`` mode first-characters of the append protocol (WAL-style
#: logs legitimately append to their final path; durability there is
#: the runtime ``fsync_every`` cadence, not the rename dance).
APPEND_MODE_CHARS = ("a",)

#: Case-insensitive substrings marking a name/path as a scratch file.
TEMP_MARKERS = ("tmp", "temp")

#: Module-level ``open``-alikes whose *first* argument is the path.
_MODULE_OPENERS = frozenset({
    "io.open", "gzip.open", "bz2.open", "lzma.open", "tarfile.open",
})

#: Executor methods that hand a callable (and its payload) to workers.
SUBMISSION_METHODS = frozenset({"submit", "map", "apply_async"})

#: Durability classes that own an OS resource until ``close()``.
OWNING_CLASSES = frozenset({"WriteAheadLog", "DurabilityManager"})


def resolve(project, info, expression):
    """Resolve an AST expression to a qualified name via the index.

    Parameters
    ----------
    project:
        The :class:`repro.analysis.project.ProjectIndex`.
    info:
        :class:`ModuleInfo` the expression appears in.
    expression:
        Call target / attribute / name node.

    Returns
    -------
    str or None
        The resolved dotted name, or ``None`` when it does not resolve
        through the module's imports.
    """
    dotted = dotted_name(expression)
    if dotted is None:
        return None
    return project.resolve(info, dotted)


def is_runtime_module(info) -> bool:
    """Whether a module is shipped ``repro`` runtime code.

    Test modules, benchmarks and examples opt out of the protocol
    rules: they deliberately vandalize protocols to prove the runtime
    survives.

    Parameters
    ----------
    info:
        :class:`ModuleInfo` to classify.

    Returns
    -------
    bool
    """
    if info.context.is_test_module:
        return False
    return info.name == "repro" or info.name.startswith("repro.")


def durability_reachable(project):
    """Enumerate the durability package and its call-graph closure.

    Every function defined under ``repro.durability`` is a root; the
    walk then follows the approximate call graph outward, so a helper
    the snapshot writer delegates to is held to the same protocol.
    Telemetry modules are exempt (observability writes no durable
    state), as are non-runtime modules.

    Parameters
    ----------
    project:
        The project index.

    Yields
    ------
    tuple
        ``(function, module_info, call_path)`` per in-scope function;
        ``call_path`` is the shortest durability-root→function
        qualname list (a bare ``[qualname]`` for the roots themselves).
    """
    roots = sorted(
        qualname for qualname, function in project.functions.items()
        if function.module.startswith("repro.durability")
    )
    if not roots:
        return
    for qualname, path in sorted(project.reachable_from(roots).items()):
        function = project.functions.get(qualname)
        if function is None:
            continue
        info = project.modules[function.module]
        if not is_runtime_module(info):
            continue
        if info.name.startswith("repro.telemetry"):
            continue
        yield function, info, path


def durability_trace(path) -> tuple:
    """Render a durability call path as finding trace hops.

    Parameters
    ----------
    path:
        Qualname list, durability root first.

    Returns
    -------
    tuple of str
    """
    hops = [f"durability {path[0]}()"]
    hops += [f"→ {qualname}()" for qualname in path[1:]]
    return tuple(hops)


def submission_sites(project):
    """Enumerate executor hand-offs in the parallel package.

    Matches the same call shape as
    :meth:`ProjectIndex.worker_roots` — ``pool.submit(f, ...)``,
    ``pool.map(f, ...)``, ``apply_async(f, ...)`` — but yields the
    *call sites* with their enclosing functions, which the CONC rules
    need to inspect the submitted payload.

    Parameters
    ----------
    project:
        The project index.

    Yields
    ------
    tuple
        ``(module_info, enclosing_function, call_node)`` per site.
    """
    for name in sorted(project.modules):
        info = project.modules[name]
        if ".parallel" not in f".{info.name}":
            continue
        if not is_runtime_module(info):
            continue
        for local in sorted(info.functions):
            function = info.functions[local]
            for node in ast.walk(function.node):
                if (
                    isinstance(node, ast.Call)
                    and node.args
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in SUBMISSION_METHODS
                ):
                    yield info, function, node


def open_mode(node) -> str | None:
    """The mode string of an ``open()``-style call.

    Parameters
    ----------
    node:
        The open-like :class:`ast.Call` (see :func:`open_call_shape`).

    Returns
    -------
    str or None
        The literal mode, ``"r"`` when omitted, or ``None`` when the
        mode is a dynamic expression (unknowable statically).
    """
    shape = open_call_shape(node)
    position = 0 if shape == "method" else 1
    candidates = node.args[position:position + 1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            candidates = [keyword.value]
    if not candidates:
        return "r"
    value = candidates[0]
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    return None


def open_call_shape(node) -> str | None:
    """Classify a call as an ``open()`` acquisition.

    Parameters
    ----------
    node:
        Any :class:`ast.Call`.

    Returns
    -------
    str or None
        ``"builtin"`` for ``open(path, mode)`` and the module-level
        openers (path first), ``"method"`` for ``obj.open(mode)``
        (``pathlib.Path.open`` — the receiver is the path), or ``None``
        for calls that open nothing.
    """
    if isinstance(node.func, ast.Name):
        return "builtin" if node.func.id == "open" else None
    if isinstance(node.func, ast.Attribute) and node.func.attr == "open":
        dotted = dotted_name(node.func)
        if dotted in _MODULE_OPENERS:
            return "builtin"
        return "method"
    return None


def open_path_expression(node):
    """The path expression an open-like call writes to.

    Parameters
    ----------
    node:
        The open-like call.

    Returns
    -------
    ast.AST or None
        First argument for builtin-shaped opens, the receiver for
        ``Path.open``-shaped ones.
    """
    shape = open_call_shape(node)
    if shape == "builtin":
        return node.args[0] if node.args else None
    if shape == "method":
        return node.func.value
    return None


def owning_class_name(project, info, node) -> str | None:
    """Name of the resource-owning durability class a call constructs.

    Parameters
    ----------
    project:
        The project index.
    info:
        Module the call appears in.
    node:
        The :class:`ast.Call`.

    Returns
    -------
    str or None
        ``"WriteAheadLog"`` / ``"DurabilityManager"`` when the call
        resolves to one of those constructors, else ``None``.
    """
    resolved = resolve(project, info, node.func)
    if resolved is None or not resolved.startswith("repro."):
        return None
    leaf = resolved.rsplit(".", 1)[-1]
    return leaf if leaf in OWNING_CLASSES else None


def single_name_assignments(function_node) -> dict:
    """Map locally assigned names to their right-hand expressions.

    Only plain single-``Name`` targets are recorded — exactly the
    shape temp-path and acquisition provenance needs.  Later
    assignments overwrite earlier ones (last-write-wins is the right
    approximation for straight-line protocol code).

    Parameters
    ----------
    function_node:
        The ``def`` node to scan.

    Returns
    -------
    dict of str to ast.AST
    """
    table = {}
    for node in ast.walk(function_node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            table[node.targets[0].id] = node.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.value is not None
        ):
            table[node.target.id] = node.value
    return table


def _tempish(text: str) -> bool:
    """Whether a name or path fragment reads as a scratch location."""
    lowered = text.lower()
    return any(marker in lowered for marker in TEMP_MARKERS)


def is_temp_path(expression, assignments, depth: int = 0) -> bool:
    """Whether a path expression denotes a scratch/temp location.

    Recognizes temp-ish variable names (``temporary``, ``tmp_path``),
    string literals and f-strings containing a temp marker,
    ``with_suffix``/``with_name`` calls whose argument carries one,
    ``tempfile`` module calls, and (one level of) assignment
    provenance through :func:`single_name_assignments`.

    Parameters
    ----------
    expression:
        The path expression handed to an open-like call.
    assignments:
        Local assignment table of the enclosing function.
    depth:
        Recursion guard for provenance chains.

    Returns
    -------
    bool
    """
    if expression is None or depth > 4:
        return False
    if isinstance(expression, ast.Name):
        if _tempish(expression.id):
            return True
        return is_temp_path(
            assignments.get(expression.id), assignments, depth + 1
        )
    if isinstance(expression, ast.Constant):
        return isinstance(expression.value, str) and _tempish(
            expression.value
        )
    if isinstance(expression, ast.JoinedStr):
        return any(
            isinstance(value, ast.Constant)
            and isinstance(value.value, str)
            and _tempish(value.value)
            for value in expression.values
        )
    if isinstance(expression, ast.Call):
        dotted = dotted_name(expression.func)
        if dotted is not None and dotted.startswith("tempfile."):
            return True
        if isinstance(expression.func, ast.Attribute):
            if expression.func.attr in ("with_suffix", "with_name"):
                return any(
                    isinstance(argument, ast.Constant)
                    and isinstance(argument.value, str)
                    and _tempish(argument.value)
                    for argument in expression.args
                )
        return False
    if isinstance(expression, ast.BinOp):
        # ``directory / "state.tmp"`` builds a path by division.
        return is_temp_path(
            expression.left, assignments, depth + 1
        ) or is_temp_path(expression.right, assignments, depth + 1)
    return False


def describe_expression(expression) -> str:
    """Short display form of an expression for finding messages.

    Parameters
    ----------
    expression:
        Any AST expression.

    Returns
    -------
    str
        Its dotted name, string value, or a generic placeholder.
    """
    dotted = dotted_name(expression)
    if dotted is not None:
        return dotted
    if isinstance(expression, ast.Constant):
        return repr(expression.value)
    return "<expression>"

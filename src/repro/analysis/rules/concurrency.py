"""CONC-001/002 — fork- and share-safety of the parallel engine.

``repro.parallel`` owes its determinism contract (results independent
of worker count and backend) to two structural properties the DET
rules do not check:

* **no shared-object mutation** — a worker function receives its task
  tuple *by value* across the process boundary; on the thread backend
  the same objects are shared memory.  A worker that mutates its task
  payload (or a callee that mutates a parameter fed from it) is
  invisible corruption on threads and silently-divergent state on
  processes.  The sanctioned way to combine worker results is the
  statistics-additivity merge *in the driver*, after the future
  resolves — never in-place through the submitted objects.
* **no captured resources** — a payload that carries an open file
  handle, a live ``WriteAheadLog``/``DurabilityManager``, or live RNG
  state (``np.random.Generator``) cannot cross a fork safely: handles
  share file offsets, WAL writers interleave frames, and a pickled
  generator duplicates its draw position in every worker.  The
  sanctioned boundary object is a ``SeedSequence`` from
  ``spawn_seed_sequences`` (cheap, picklable, spawn-stable); workers
  construct their own generator from it via ``rng_from_seed_sequence``
  and open their own files.

**CONC-001** walks every submitted worker root and flags in-place
mutation (subscript/attribute stores, augmented assignment, mutator
method calls) of the payload parameters or names unpacked from them,
including one call level deep through the approximate call graph.
**CONC-002** inspects every ``pool.submit``/``map``/``apply_async``
payload expression in the parallel package and flags names whose local
provenance is a handle acquisition or live-generator construction.

Both rules share finding traces in the DET style: the submission site
or worker root first, then the hop that exhibits the violation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register
from repro.analysis.rules.determinism import _MUTATOR_METHODS
from repro.analysis.rules.protocol import (
    open_call_shape,
    owning_class_name,
    resolve,
    submission_sites,
)

#: Resolved constructors whose result is live RNG state — forbidden in
#: a worker payload.  ``spawn_seed_sequences`` is deliberately absent:
#: SeedSequences are the sanctioned boundary-crossing object.
_RNG_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "repro.linalg.rng.check_random_state",
    "repro.linalg.rng.rng_from_seed_sequence",
})

_CONC001_MESSAGE = (
    "{described} mutates {name!r}, which worker {root}() receives "
    "through a pool submission; shared-payload mutation corrupts "
    "sibling shards on the thread backend and silently diverges on "
    "processes — return the result and merge it in the driver via "
    "statistics additivity"
)
_CONC002_MESSAGE = (
    "pool.{method}() payload captures {kind} ({name}); it cannot "
    "cross the worker boundary safely — pass a path or SeedSequence "
    "and acquire inside the worker (see _condense_shard)"
)


def _worker_root_functions(project):
    """Resolve every submitted callable to its indexed function.

    Parameters
    ----------
    project:
        The project index.

    Yields
    ------
    tuple
        ``(root_function, root_module_info)`` per distinct worker root,
        in qualname order.
    """
    seen = {}
    for info, _function, node in submission_sites(project):
        target = dotted_name(node.args[0])
        if target is None:
            continue
        root = project.resolve_function(info, target)
        if root is not None:
            seen.setdefault(root.qualname, root)
    for qualname in sorted(seen):
        root = seen[qualname]
        yield root, project.modules[root.module]


def _payload_names(function) -> set:
    """Names aliasing the worker's submitted payload.

    Starts from the function's parameters (minus ``self``/``cls``) and
    propagates through plain aliasing and tuple unpacking —
    ``records, k, strategy, seq = task`` makes all four payload names.
    Rebinding through calls (``np.asarray(records)``) does *not*
    propagate: the rule under-approximates rather than flag copies.

    Parameters
    ----------
    function:
        The worker-root :class:`FunctionInfo`.

    Returns
    -------
    set of str
    """
    shared = {
        parameter for parameter in function.params
        if parameter not in ("self", "cls")
    }

    def rooted(expression) -> bool:
        root = expression
        while isinstance(root, (ast.Subscript, ast.Attribute, ast.Starred)):
            root = root.value
        return isinstance(root, ast.Name) and root.id in shared

    changed = True
    while changed:
        changed = False
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Assign) or not rooted(node.value):
                continue
            for target in node.targets:
                elements = (
                    target.elts if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in elements:
                    if isinstance(element, ast.Starred):
                        element = element.value
                    if (
                        isinstance(element, ast.Name)
                        and element.id not in shared
                    ):
                        shared.add(element.id)
                        changed = True
    return shared


def _mutated_parameters(function) -> set:
    """Parameter positions a function mutates in place.

    Parameters
    ----------
    function:
        Any indexed :class:`FunctionInfo`.

    Returns
    -------
    set of int
        Positional indices (into ``function.params``) whose objects the
        body stores into or calls mutator methods on.
    """
    parameters = {
        name: position for position, name in enumerate(function.params)
        if name not in ("self", "cls")
    }
    mutated = set()
    for node, name in _mutations(function.node, set(parameters)):
        mutated.add(parameters[name])
    return mutated


def _mutations(function_node, names):
    """Yield ``(node, name)`` for in-place mutations of ``names``.

    Covers subscript/attribute stores and deletes rooted at a tracked
    name, augmented assignment through one, and mutator method calls
    (``append``/``update``/...) on one.

    Parameters
    ----------
    function_node:
        The ``def`` node to scan.
    names:
        Names whose objects must not be mutated.

    Yields
    ------
    tuple
        ``(offending_node, offending_name)`` pairs.
    """

    def tracked_root(expression) -> str | None:
        root = expression
        while isinstance(root, (ast.Subscript, ast.Attribute)):
            root = root.value
        if isinstance(root, ast.Name) and root.id in names:
            return root.id
        return None

    for node in ast.walk(function_node):
        if isinstance(node, (ast.Subscript, ast.Attribute)) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            name = tracked_root(node)
            if name is not None:
                yield node, name
        elif isinstance(node, ast.AugAssign):
            # Subscript/attribute targets already match the Store
            # branch above; this one covers ``records += [...]``.
            if isinstance(node.target, ast.Name):
                name = tracked_root(node.target)
                if name is not None:
                    yield node, name
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in _MUTATOR_METHODS:
            name = tracked_root(node.func.value)
            if name is not None:
                yield node, name


class _ConcurrencyRule(ProjectRule):
    """Shared scaffolding for the CONC rule family."""

    def _finding(self, info, node, message, trace) -> Finding:
        """Build a finding with an explicit trace.

        Parameters
        ----------
        info:
            :class:`ModuleInfo` of the offending module.
        node:
            Offending AST node.
        message:
            Violation message.
        trace:
            Provenance hops (submission/root first).

        Returns
        -------
        Finding
        """
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            trace=tuple(trace),
        )


@register
class WorkerPayloadMutationRule(_ConcurrencyRule):
    """Workers must not mutate their submitted payload in place."""

    rule_id = "CONC-001"
    summary = (
        "worker functions must not mutate objects received through a "
        "pool submission (merge results in the driver instead)"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Scan worker roots (and one callee level) for payload writes.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        for root, info in _worker_root_functions(project):
            shared = _payload_names(root)
            for node, name in _mutations(root.node, shared):
                yield self._finding(
                    info, node,
                    _CONC001_MESSAGE.format(
                        described=self._describe(node),
                        name=name, root=root.qualname,
                    ),
                    (f"worker {root.qualname}()",),
                )
            yield from self._check_callees(project, root, info, shared)

    def _check_callees(self, project, root, info, shared):
        """Flag payload names handed to parameter-mutating callees.

        One call level deep: the callee's own mutation summary
        (:func:`_mutated_parameters`) decides, so a worker delegating
        to a helper that scribbles on its argument is still caught.

        Parameters
        ----------
        project:
            The project index.
        root:
            The worker-root :class:`FunctionInfo`.
        info:
            Its :class:`ModuleInfo`.
        shared:
            Payload-aliasing names in the root.

        Yields
        ------
        Finding
        """
        for node in ast.walk(root.node):
            if not isinstance(node, ast.Call):
                continue
            callee = project.resolve_function(
                info, dotted_name(node.func), class_name=root.class_name
            )
            if callee is None or callee.qualname == root.qualname:
                continue
            mutated = _mutated_parameters(callee)
            if not mutated:
                continue
            offset = 1 if callee.params[:1] in (["self"], ["cls"]) else 0
            for position, argument in enumerate(node.args):
                if (
                    isinstance(argument, ast.Name)
                    and argument.id in shared
                    and position + offset in mutated
                ):
                    yield self._finding(
                        info, node,
                        _CONC001_MESSAGE.format(
                            described=f"{callee.qualname}()",
                            name=argument.id, root=root.qualname,
                        ),
                        (
                            f"worker {root.qualname}()",
                            f"→ {callee.qualname}() mutates parameter "
                            f"{callee.params[position + offset]!r}",
                        ),
                    )

    @staticmethod
    def _describe(node) -> str:
        """Short display form of a mutation site."""
        if isinstance(node, ast.Call):
            return f"{dotted_name(node.func) or 'mutator'}()"
        if isinstance(node, ast.AugAssign):
            return "augmented assignment"
        return "store"


@register
class WorkerCapturedResourceRule(_ConcurrencyRule):
    """Submission payloads must not carry handles or live RNG state."""

    rule_id = "CONC-002"
    summary = (
        "pool submissions must not capture open handles, WAL writers "
        "or live RNG state (pass paths and SeedSequences instead)"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Scan submission payloads for fork-unsafe acquisitions.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        for info, function, node in submission_sites(project):
            provenance = self._acquisitions(project, info, function)
            payload = list(node.args[1:])
            payload += [keyword.value for keyword in node.keywords]
            if isinstance(node.args[0], ast.Lambda):
                payload.append(node.args[0].body)
            for expression in payload:
                yield from self._check_payload(
                    project, info, function, node, expression, provenance
                )

    def _acquisitions(self, project, info, function) -> dict:
        """Local names bound to fork-unsafe resources.

        Parameters
        ----------
        project:
            The project index.
        info:
            Module of the enclosing function.
        function:
            The enclosing :class:`FunctionInfo`.

        Returns
        -------
        dict of str to str
            Name → human description of the captured resource kind.
        """
        table = {}
        for statement in ast.walk(function.node):
            if not (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
            ):
                continue
            kind = self._resource_kind(project, info, statement.value)
            name = statement.targets[0].id
            if kind is not None:
                table[name] = kind
            else:
                table.pop(name, None)
        return table

    def _resource_kind(self, project, info, expression) -> str | None:
        """Classify an expression as a fork-unsafe acquisition.

        Parameters
        ----------
        project:
            The project index.
        info:
            Module the expression appears in.
        expression:
            Right-hand side (or inline payload) expression.

        Returns
        -------
        str or None
            Description of the resource, or ``None`` when benign.
        """
        if not isinstance(expression, ast.Call):
            return None
        if open_call_shape(expression) is not None:
            return "an open file handle"
        owner = owning_class_name(project, info, expression)
        if owner is not None:
            return f"a live {owner}"
        resolved = resolve(project, info, expression.func)
        if resolved in _RNG_CONSTRUCTORS:
            return "live RNG state (np.random.Generator)"
        dotted = dotted_name(expression.func)
        if dotted is not None and dotted.startswith("tempfile."):
            return "an open file handle"
        return None

    def _check_payload(
        self, project, info, function, site, expression, provenance
    ) -> Iterator[Finding]:
        """Flag fork-unsafe names/calls inside one payload expression.

        Parameters
        ----------
        project:
            The project index.
        info:
            Module of the submission site.
        function:
            Enclosing function of the site.
        site:
            The submission :class:`ast.Call`.
        expression:
            One payload argument expression.
        provenance:
            Acquisition table from :meth:`_acquisitions`.

        Yields
        ------
        Finding
        """
        method = site.func.attr
        for node in ast.walk(expression):
            if isinstance(node, ast.Name) and node.id in provenance:
                yield self._finding(
                    info, node,
                    _CONC002_MESSAGE.format(
                        method=method, kind=provenance[node.id],
                        name=node.id,
                    ),
                    (
                        f"submission in {function.qualname}()",
                        f"→ payload name {node.id!r} holds "
                        f"{provenance[node.id]}",
                    ),
                )
            elif isinstance(node, ast.Call):
                kind = self._resource_kind(project, info, node)
                if kind is not None:
                    yield self._finding(
                        info, node,
                        _CONC002_MESSAGE.format(
                            method=method, kind=kind,
                            name=dotted_name(node.func) or "<call>",
                        ),
                        (
                            f"submission in {function.qualname}()",
                            "→ acquired inline in the payload",
                        ),
                    )

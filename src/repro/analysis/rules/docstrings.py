"""DOC-001 — NumPy-style docstrings on the public API.

The experiments in Figs. 5–8 are driven through the public API; an
undocumented parameter is how a sweep silently runs with the wrong
semantics.  Every public function or method (module-level ``def`` and
methods of public classes, name not starting with ``_``) must carry a
docstring; if it takes parameters it must have a NumPy-style
``Parameters`` section, and if it returns a value, a ``Returns`` (or
``Yields``) section.

Public *methods* must carry a docstring, but the section requirements
apply to module-level functions only: a method's parameter semantics
live in its class docstring's ``Parameters``/``Attributes`` sections
and the surrounding protocol (``fit``/``transform``/...), and repeating
them per method buries the signal.  Module-level functions are the
composition surface the experiment sweeps call directly — there the
sections are mandatory.

Out of scope: test modules, dunder methods, ``@property`` accessors and
setters (documented as attributes), and ``@overload`` stubs.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

_SECTION = {
    "Parameters": re.compile(r"^\s*Parameters\s*\n\s*-{3,}\s*$", re.M),
    "Returns": re.compile(r"^\s*(Returns|Yields)\s*\n\s*-{3,}\s*$", re.M),
}

_SKIP_DECORATORS = frozenset({"property", "overload", "cached_property"})


def _decorator_names(node) -> set:
    """Final attribute names of a def's decorators."""
    names = set()
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Attribute):
            names.add(target.attr)
        elif isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _documented_parameters(node, is_method: bool) -> list:
    """Parameter names that require documentation."""
    arguments = node.args
    names = [argument.arg for argument in arguments.posonlyargs]
    names += [argument.arg for argument in arguments.args]
    if is_method and names and names[0] in {"self", "cls"}:
        names = names[1:]
    names += [argument.arg for argument in arguments.kwonlyargs]
    if arguments.vararg is not None:
        names.append(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.append(arguments.kwarg.arg)
    return names


def _returns_value(node) -> bool:
    """Whether the function returns (or yields) a value."""
    annotation = node.returns
    if annotation is not None:
        if isinstance(annotation, ast.Constant) and annotation.value is None:
            return False
        if isinstance(annotation, ast.Name) and annotation.id == "None":
            return False
        return True
    for child in ast.walk(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)) and child is not node:
            continue
        if isinstance(child, ast.Return) and child.value is not None:
            if not (isinstance(child.value, ast.Constant)
                    and child.value.value is None):
                return True
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
    return False


@register
class PublicDocstringRule(Rule):
    """Require NumPy-style docstrings on public functions and methods."""

    rule_id = "DOC-001"
    summary = (
        "public functions need docstrings with NumPy-style Parameters/"
        "Returns sections"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Scan public defs for missing docstring sections.

        Parameters
        ----------
        module:
            Parsed module context.

        Yields
        ------
        Finding
        """
        if module.is_test_module:
            return
        yield from self._scan(module, module.tree.body, is_method=False,
                              public_scope=True)

    def _scan(self, module, body, is_method, public_scope) -> Iterator[Finding]:
        """Walk defs at one nesting level."""
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._scan(
                    module, node.body, is_method=True,
                    public_scope=public_scope
                    and not node.name.startswith("_"),
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if public_scope:
                    yield from self._check_def(module, node, is_method)
                # Nested defs are implementation detail — not scanned.

    def _check_def(self, module, node, is_method) -> Iterator[Finding]:
        """Check one public def's docstring."""
        name = node.name
        if name.startswith("_"):
            return
        decorators = _decorator_names(node)
        if decorators & _SKIP_DECORATORS or "setter" in decorators:
            return
        docstring = ast.get_docstring(node)
        kind = "method" if is_method else "function"
        if not docstring:
            yield self.finding(
                module, node,
                f"public {kind} {name}() has no docstring; document it "
                f"NumPy-style",
            )
            return
        if is_method:
            return
        missing = []
        if (
            _documented_parameters(node, is_method)
            and not _SECTION["Parameters"].search(docstring)
        ):
            missing.append("Parameters")
        if _returns_value(node) and not _SECTION["Returns"].search(docstring):
            missing.append("Returns")
        if missing:
            yield self.finding(
                module, node,
                f"docstring of public {kind} {name}() lacks a NumPy-style "
                f"{'/'.join(missing)} section",
            )

"""FS-001/002/003 — the durability write/read protocol, statically.

The crash-safety argument of ``repro.durability`` (docs/durability.md)
rests on two file-system protocols:

* **atomic publication** — durable state reaches its final name only
  through ``write tmp → flush → fsync → os.replace``, so a reader (or
  a recovery) never observes a half-written file under a final name;
* **CRC before trust** — every byte sequence read back (WAL lines,
  snapshot documents, shard checkpoints) is checksum-validated before
  its JSON payload is parsed and acted on.

The 195-test fault-injection suite proves the *implementations* honor
these protocols today; these three rules prove every *future* writer
and reader in the durability closure keeps honoring them, in
milliseconds, on every commit:

* **FS-001** — a write-mode ``open()`` in durability scope must target
  a scratch path (``*.tmp``, ``tempfile``), and that scratch file must
  later be ``os.replace``\\ d onto its final name.  Direct writes to
  final paths and orphaned temp files are flagged.  Append-mode opens
  are exempt: the WAL's append protocol publishes incrementally and
  gets its durability from the ``fsync_every`` cadence, not a rename.
* **FS-002** — every ``os.replace``/``os.rename`` must be preceded (in
  the same function) by an ``os.fsync``: renaming before the data is
  synced lets the metadata land first, and a crash then publishes a
  hollow file under the final name.  ``os.rename`` itself is flagged
  in favor of the explicitly-clobbering ``os.replace``.
* **FS-003** — inside the durability package, ``json.loads``/``load``
  must be dominated by a ``zlib.crc32`` (or ``binascii.crc32``) call:
  parsing a CRC-framed payload before validating its frame turns
  bit-rot into undefined behavior instead of a skipped snapshot.

Scope is :func:`~repro.analysis.rules.protocol.durability_reachable`
(the durability package plus its call-graph closure) for FS-001/002,
extended to write-mode opens anywhere in privacy-critical modules;
FS-003 applies to the durability package itself, where the CRC-framed
formats live.  Ordering is judged by line number within one function —
the right approximation for the straight-line write/read paths these
protocols demand (a protocol spread across helpers should *be* a
helper, which the closure walk then covers).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, register
from repro.analysis.rules.protocol import (
    APPEND_MODE_CHARS,
    WRITE_MODE_CHARS,
    describe_expression,
    durability_reachable,
    durability_trace,
    is_runtime_module,
    is_temp_path,
    open_call_shape,
    open_mode,
    open_path_expression,
    resolve,
    single_name_assignments,
)

#: Resolved rename targets of the atomic-publication protocol.
_RENAME_CALLS = frozenset({"os.replace", "os.rename"})

#: Resolved CRC implementations that validate a frame.
_CRC_CALLS = frozenset({"zlib.crc32", "binascii.crc32"})

#: Resolved JSON consumers of framed payloads.
_JSON_CONSUMERS = frozenset({"json.loads", "json.load"})

_FS001_FINAL_MESSAGE = (
    "{described} opens a final path for writing inside the durability "
    "protocol; write to a *.tmp scratch path, flush, fsync, then "
    "os.replace() it onto the final name so readers never observe a "
    "torn file"
)
_FS001_ORPHAN_MESSAGE = (
    "{described} writes a temp file that is never os.replace()d onto "
    "its final name later in {function}(); an unpublished scratch file "
    "is lost state after a crash"
)
_FS002_NO_FSYNC_MESSAGE = (
    "{name}() publishes a file with no preceding os.fsync() in "
    "{function}(); the rename can become durable before the data, so a "
    "crash publishes a hollow file under the final name"
)
_FS002_LATE_FSYNC_MESSAGE = (
    "{name}() runs before the os.fsync() in {function}(); fsync must "
    "cover the data *before* the rename publishes it"
)
_FS002_RENAME_MESSAGE = (
    "os.rename() in {function}(): use os.replace() — it is the "
    "explicitly-clobbering atomic publish this codebase standardizes "
    "on, with identical semantics on POSIX and defined behavior "
    "elsewhere"
)
_FS003_MESSAGE = (
    "{name}() parses a payload with no preceding CRC validation in "
    "{function}(); durability formats are CRC-framed — check "
    "zlib.crc32 over the body before trusting it (see decode_line / "
    "read_snapshot)"
)


def _fs_scope(project):
    """FS-001/002 scope: durability closure + privacy-critical modules.

    Parameters
    ----------
    project:
        The project index.

    Yields
    ------
    tuple
        ``(function, module_info, call_path)``; privacy-critical
        functions outside the durability closure get a single-entry
        path (their own qualname).
    """
    seen = set()
    for function, info, path in durability_reachable(project):
        seen.add(function.qualname)
        yield function, info, path
    for name in sorted(project.modules):
        info = project.modules[name]
        if not is_runtime_module(info) or not info.context.is_privacy_critical:
            continue
        for local in sorted(info.functions):
            function = info.functions[local]
            if function.qualname not in seen:
                yield function, info, [function.qualname]


class _DurabilityRule(ProjectRule):
    """Shared scaffolding for the FS rule family."""

    def _finding(self, info, node, message, path) -> Finding:
        """Build a finding inside a durability-scope function.

        Parameters
        ----------
        info:
            :class:`ModuleInfo` of the offending module.
        node:
            Offending AST node.
        message:
            Violation message (line-number free, for baseline
            stability).
        path:
            Durability-root→function call path.

        Returns
        -------
        Finding
        """
        return Finding(
            path=info.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            trace=durability_trace(path),
        )


@register
class AtomicWriteRule(_DurabilityRule):
    """Durable writes go through a temp path and an atomic replace."""

    rule_id = "FS-001"
    summary = (
        "write-mode open() in durability scope must target a temp path "
        "that is later os.replace()d onto its final name"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Scan durability-scope functions for non-atomic writes.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        for function, info, path in _fs_scope(project):
            assignments = single_name_assignments(function.node)
            replace_lines = [
                node.lineno for node in ast.walk(function.node)
                if isinstance(node, ast.Call)
                and resolve(project, info, node.func) in _RENAME_CALLS
            ]
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                if open_call_shape(node) is None:
                    continue
                mode = open_mode(node)
                if mode is None or not mode.startswith(WRITE_MODE_CHARS):
                    # Reads, repairs ('rb+') and the WAL's append
                    # protocol are out of FS-001's write state machine.
                    continue
                if mode.startswith(APPEND_MODE_CHARS):
                    continue
                target = open_path_expression(node)
                described = (
                    f"open({describe_expression(target)}, {mode!r})"
                )
                if not is_temp_path(target, assignments):
                    yield self._finding(
                        info, node,
                        _FS001_FINAL_MESSAGE.format(described=described),
                        path,
                    )
                elif not any(
                    line > node.lineno for line in replace_lines
                ):
                    yield self._finding(
                        info, node,
                        _FS001_ORPHAN_MESSAGE.format(
                            described=described,
                            function=function.qualname,
                        ),
                        path,
                    )


@register
class FsyncBeforeRenameRule(_DurabilityRule):
    """Every atomic publish is covered by a preceding fsync."""

    rule_id = "FS-002"
    summary = (
        "os.replace()/os.rename() in durability scope must be preceded "
        "by os.fsync() of the written data"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Scan durability-scope functions for unsynced publishes.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        for function, info, path in _fs_scope(project):
            fsync_lines = [
                node.lineno for node in ast.walk(function.node)
                if isinstance(node, ast.Call)
                and resolve(project, info, node.func) == "os.fsync"
            ]
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolve(project, info, node.func)
                if resolved not in _RENAME_CALLS:
                    continue
                if resolved == "os.rename":
                    yield self._finding(
                        info, node,
                        _FS002_RENAME_MESSAGE.format(
                            function=function.qualname
                        ),
                        path,
                    )
                if not fsync_lines:
                    yield self._finding(
                        info, node,
                        _FS002_NO_FSYNC_MESSAGE.format(
                            name=resolved, function=function.qualname
                        ),
                        path,
                    )
                elif not any(
                    line < node.lineno for line in fsync_lines
                ):
                    yield self._finding(
                        info, node,
                        _FS002_LATE_FSYNC_MESSAGE.format(
                            name=resolved, function=function.qualname
                        ),
                        path,
                    )


@register
class CrcBeforeUseRule(_DurabilityRule):
    """Framed payloads are CRC-validated before they are parsed."""

    rule_id = "FS-003"
    summary = (
        "json parsing in the durability package must be dominated by a "
        "CRC check of the framed payload"
    )

    def check_project(self, project) -> Iterator[Finding]:
        """Scan durability-package functions for unvalidated parses.

        Parameters
        ----------
        project:
            The project index.

        Yields
        ------
        Finding
        """
        for function, info, path in durability_reachable(project):
            if not info.name.startswith("repro.durability"):
                # The closure may reach generic JSON consumers (model
                # stores, caches) whose formats are not CRC-framed;
                # the framing contract lives in the package itself.
                continue
            crc_lines = [
                node.lineno for node in ast.walk(function.node)
                if isinstance(node, ast.Call)
                and resolve(project, info, node.func) in _CRC_CALLS
            ]
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = resolve(project, info, node.func)
                if resolved not in _JSON_CONSUMERS:
                    continue
                if resolved == "json.loads" and self._encodes_only(
                    function, node
                ):
                    continue
                if not any(line < node.lineno for line in crc_lines):
                    yield self._finding(
                        info, node,
                        _FS003_MESSAGE.format(
                            name=resolved, function=function.qualname
                        ),
                        path,
                    )

    @staticmethod
    def _encodes_only(function, node) -> bool:
        """Whether a parse re-reads bytes this same function produced.

        A writer that round-trips its own ``json.dumps`` output (e.g.
        to measure the encoded size) is not consuming framed disk
        bytes.  Recognized purely syntactically: the parsed expression
        is a call to ``json.dumps``.

        Parameters
        ----------
        function:
            Enclosing :class:`FunctionInfo`.
        node:
            The ``json.loads`` call.

        Returns
        -------
        bool
        """
        if not node.args:
            return False
        argument = node.args[0]
        if isinstance(argument, ast.Call):
            from repro.analysis.astutils import dotted_name

            return dotted_name(argument.func) == "json.dumps"
        return False

"""RNG-001 — seeded-generator discipline.

The reproduction's claim to the paper's figures rests on every
stochastic path being deterministic under a fixed seed.  Two failure
modes break that silently:

* calling ``numpy.random``'s *global-state* functions (``seed``,
  ``rand``, ``normal``, ...), which couple unrelated experiments through
  hidden shared state; and
* constructing ``default_rng`` ad hoc instead of threading a
  ``random_state`` argument through
  :func:`repro.linalg.rng.check_random_state` /
  :func:`repro.linalg.rng.spawn_rngs`.

``repro/linalg/rng.py`` is the single module allowed to construct
generators.  Test modules get one relaxation: *seeded* ``default_rng``
construction is permitted there (an explicitly seeded generator is
deterministic; requiring the indirection in tests would only obscure
them).  Unseeded construction and global-state calls are violations
everywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutils import (
    call_argument_count,
    dotted_name,
    numpy_random_aliases,
)
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register

# Attributes of numpy.random that are classes / seedable machinery, not
# global-state convenience functions.  Shared with DET-002, which
# re-applies the same policy to worker-reachable code.
NON_GLOBAL_ATTRIBUTES = frozenset({
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
})
_NON_GLOBAL = NON_GLOBAL_ATTRIBUTES

_GLOBAL_MESSAGE = (
    "call to numpy.random.{name}() uses numpy's hidden global RNG state; "
    "accept a random_state argument and thread a Generator through "
    "repro.linalg.rng.check_random_state instead"
)
_CONSTRUCT_MESSAGE = (
    "{name}() may only be constructed inside repro/linalg/rng.py; "
    "elsewhere accept a random_state argument and normalize it with "
    "repro.linalg.rng.check_random_state (or spawn_rngs)"
)
_UNSEEDED_TEST_MESSAGE = (
    "unseeded {name}() is non-deterministic; pass an explicit seed "
    "so the test is reproducible"
)
_LEGACY_MESSAGE = (
    "numpy.random.RandomState is the legacy RNG; use the Generator API "
    "via repro.linalg.rng.check_random_state"
)
_STDLIB_IMPORT_MESSAGE = (
    "stdlib random in a privacy-critical module draws from hidden "
    "global state; thread a numpy Generator through "
    "repro.linalg.rng.check_random_state instead"
)
_STDLIB_CALL_MESSAGE = (
    "stdlib random.{name}() draws from hidden global state; use the "
    "numpy Generator threaded via repro.linalg.rng.check_random_state"
)


@register
class RngDisciplineRule(Rule):
    """Forbid global-state numpy RNG use and stray generator construction."""

    rule_id = "RNG-001"
    summary = (
        "no numpy.random global-state calls; Generator construction only "
        "in repro/linalg/rng.py (tests may construct seeded generators)"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Scan one module for RNG discipline violations.

        Parameters
        ----------
        module:
            Parsed module context.

        Yields
        ------
        Finding
        """
        numpy_names, random_names, imported = numpy_random_aliases(module.tree)
        if module.is_privacy_critical and not module.is_test_module:
            yield from self._check_stdlib_random(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _NON_GLOBAL:
                        yield self.finding(
                            module, node,
                            _GLOBAL_MESSAGE.format(name=alias.name),
                        )
            if not isinstance(node, ast.Call):
                continue
            attribute = self._random_attribute(
                node.func, numpy_names, random_names, imported
            )
            if attribute is None:
                continue
            if attribute == "default_rng":
                yield from self._check_default_rng(module, node)
            elif attribute == "RandomState":
                yield self.finding(module, node, _LEGACY_MESSAGE)
            elif attribute not in _NON_GLOBAL:
                yield self.finding(
                    module, node, _GLOBAL_MESSAGE.format(name=attribute)
                )

    def _check_stdlib_random(self, module) -> Iterator[Finding]:
        """Flag stdlib ``random`` imports and calls (privacy-critical).

        The numpy aliasing paths above never bind the *stdlib* module,
        so this walk tracks its bindings separately: ``import random``
        (possibly aliased) and ``from random import x`` both count,
        ``from numpy import random as r`` does not.

        Parameters
        ----------
        module:
            Parsed module context.

        Yields
        ------
        Finding
        """
        module_bindings: set = set()
        function_bindings: set = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        module_bindings.add(alias.asname or alias.name)
                        yield self.finding(
                            module, node, _STDLIB_IMPORT_MESSAGE
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    for alias in node.names:
                        function_bindings.add(alias.asname or alias.name)
                    yield self.finding(module, node, _STDLIB_IMPORT_MESSAGE)
        if not module_bindings and not function_bindings:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 2 and parts[0] in module_bindings:
                yield self.finding(
                    module, node, _STDLIB_CALL_MESSAGE.format(name=parts[1])
                )
            elif len(parts) == 1 and parts[0] in function_bindings:
                yield self.finding(
                    module, node, _STDLIB_CALL_MESSAGE.format(name=parts[0])
                )

    def _random_attribute(self, func, numpy_names, random_names, imported):
        """Resolve a call target to a ``numpy.random`` attribute name."""
        name = dotted_name(func)
        if name is None:
            return None
        parts = name.split(".")
        if len(parts) == 1:
            return imported.get(parts[0])
        if len(parts) == 2 and parts[0] in random_names:
            return parts[1]
        if (
            len(parts) == 3
            and parts[0] in numpy_names
            and parts[1] == "random"
        ):
            return parts[2]
        return None

    def _check_default_rng(self, module, node) -> Iterator[Finding]:
        """Apply the construction policy for ``default_rng`` calls."""
        if module.is_rng_module:
            return
        if module.is_test_module:
            if call_argument_count(node) == 0:
                yield self.finding(
                    module, node,
                    _UNSEEDED_TEST_MESSAGE.format(name="default_rng"),
                )
            return
        yield self.finding(
            module, node, _CONSTRUCT_MESSAGE.format(name="default_rng")
        )

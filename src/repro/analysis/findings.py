"""Finding record emitted by analysis rules.

A finding pins one rule violation to one source location.  Findings are
plain data so reporters can render them as text or JSON without knowing
anything about the rules that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Path of the offending file, as given to the analyzer.
    line:
        1-based line number of the violation.
    column:
        0-based column offset of the violation.
    rule_id:
        Identifier of the rule that fired, e.g. ``"RNG-001"``.
    message:
        Human-readable explanation of the violation and the expected
        repo idiom.
    trace:
        Optional ordered hop descriptions for whole-program findings
        (e.g. a PRIV-003 source→sink path); empty for module rules.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str
    trace: tuple = ()

    def format(self) -> str:
        """Render the finding as one ``path:line:col: RULE message`` line.

        Trace hops, when present, follow on indented continuation lines
        so the source→sink path reads top to bottom.

        Returns
        -------
        str
            The formatted line(s).
        """
        head = (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} {self.message}"
        )
        if not self.trace:
            return head
        hops = "\n".join(f"    {hop}" for hop in self.trace)
        return f"{head}\n{hops}"

    def to_dict(self) -> dict:
        """Return a JSON-serializable mapping of the finding.

        Returns
        -------
        dict
            Keys ``path``, ``line``, ``column``, ``rule_id`` and
            ``message``, plus ``trace`` when the finding carries a
            source→sink path.
        """
        document = {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule_id": self.rule_id,
            "message": self.message,
        }
        if self.trace:
            document["trace"] = list(self.trace)
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "Finding":
        """Rebuild a finding from its :meth:`to_dict` mapping.

        Used by the incremental cache to replay findings without
        re-analyzing the file.

        Parameters
        ----------
        document:
            Mapping produced by :meth:`to_dict`.

        Returns
        -------
        Finding
        """
        return cls(
            path=document["path"],
            line=document["line"],
            column=document["column"],
            rule_id=document["rule_id"],
            message=document["message"],
            trace=tuple(document.get("trace", ())),
        )

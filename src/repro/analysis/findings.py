"""Finding record emitted by analysis rules.

A finding pins one rule violation to one source location.  Findings are
plain data so reporters can render them as text or JSON without knowing
anything about the rules that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Path of the offending file, as given to the analyzer.
    line:
        1-based line number of the violation.
    column:
        0-based column offset of the violation.
    rule_id:
        Identifier of the rule that fired, e.g. ``"RNG-001"``.
    message:
        Human-readable explanation of the violation and the expected
        repo idiom.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render the finding as one ``path:line:col: RULE message`` line.

        Returns
        -------
        str
            The formatted line.
        """
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} {self.message}"
        )

    def to_dict(self) -> dict:
        """Return a JSON-serializable mapping of the finding.

        Returns
        -------
        dict
            Keys ``path``, ``line``, ``column``, ``rule_id`` and
            ``message``.
        """
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule_id": self.rule_id,
            "message": self.message,
        }

"""Analyzer command line.

Run over one or more paths; exits non-zero when any finding (or any
unparsable file) remains::

    python -m repro.analysis src/ tests/
    python -m repro.analysis src/repro --format json
    python -m repro.analysis src --select RNG-001,PRIV-001
    repro lint src/ tests/
    repro lint --project --baseline .repro-lint-baseline.json src tests
    repro lint --project --update-baseline --baseline .repro-lint-baseline.json

``--project`` enables the whole-program pass (PRIV-003, DET-001/002/003,
THR-001..004) with the incremental cache; ``--baseline`` turns findings
into a ratchet — only findings beyond the baseline fail the run.
``--format sarif`` renders SARIF v2.1.0 for GitHub code scanning, and
``--stats`` adds per-rule timings to the report.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.project.cache import DEFAULT_CACHE_PATH
from repro.analysis.project.runner import run_project
from repro.analysis.registry import get_rules
from repro.analysis.reporters import (
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.walker import analyze_paths


def _rule_list(value: str) -> list:
    return [item.strip() for item in value.split(",") if item.strip()]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyzer's arguments to ``parser``.

    Shared between ``python -m repro.analysis`` and the ``repro lint``
    subcommand so both accept identical options.

    Parameters
    ----------
    parser:
        Parser (or subparser) to extend.
    """
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to analyze "
                             "(default: src tests)")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="report format (default: text); sarif "
                             "emits SARIF v2.1.0 for code-scanning "
                             "upload")
    parser.add_argument("--select", type=_rule_list, default=None,
                        metavar="RULES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", type=_rule_list, default=None,
                        metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--project", action="store_true",
                        help="run the whole-program pass (taint and "
                             "determinism rules) with the incremental "
                             "cache")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline (ratchet) file: grandfathered "
                             "findings pass, new ones fail "
                             "(implies --project)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the --baseline file from the "
                             "current findings and exit clean")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental result cache")
    parser.add_argument("--stats", action="store_true",
                        help="collect and print per-rule timings and "
                             "cache hit counts (project runs)")
    parser.add_argument("--cache-file", default=DEFAULT_CACHE_PATH,
                        metavar="PATH",
                        help="incremental cache location (default: "
                             f"{DEFAULT_CACHE_PATH})")


def run_lint(arguments) -> int:
    """Execute the analyzer for parsed CLI ``arguments``.

    Parameters
    ----------
    arguments:
        Namespace produced by a parser set up with
        :func:`add_lint_arguments`.

    Returns
    -------
    int
        Process exit code: 0 when clean, 1 on findings or file errors,
        2 on usage errors (unknown rule id, missing path).
    """
    try:
        rules = get_rules(select=arguments.select, ignore=arguments.ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if arguments.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  [{rule.scope}]  {rule.summary}")
        return 0
    if arguments.update_baseline and arguments.baseline is None:
        print("error: --update-baseline requires --baseline PATH",
              file=sys.stderr)
        return 2
    renderer = {
        "json": render_json,
        "sarif": render_sarif,
    }.get(arguments.format, render_text)
    project = arguments.project or arguments.baseline is not None
    if project:
        try:
            report = run_project(
                arguments.paths,
                rules=rules,
                cache_path=arguments.cache_file,
                use_cache=not arguments.no_cache,
                baseline_path=arguments.baseline,
                update_baseline=arguments.update_baseline,
                with_timings=getattr(arguments, "stats", False),
            )
        except (FileNotFoundError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(renderer(
            report.findings, report.errors,
            suppressed=report.suppressed, baselined=report.baselined,
            rules_run=report.rules_run, stats=report.stats,
        ))
        return 1 if report.findings or report.errors else 0
    try:
        findings, errors = analyze_paths(arguments.paths, rules=rules)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(renderer(
        findings, errors,
        rules_run=[rule.rule_id for rule in rules
                   if rule.scope == "module"],
    ))
    return 1 if findings or errors else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the standalone analyzer parser.

    Returns
    -------
    argparse.ArgumentParser
    """
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Repo-aware static analysis: RNG discipline, the "
                    "condensation statistics-only invariant, and Python "
                    "pitfalls.",
    )
    add_lint_arguments(parser)
    return parser


def main(argv=None) -> int:
    """Standalone entry point.

    Parameters
    ----------
    argv:
        Argument list; ``sys.argv[1:]`` when ``None``.

    Returns
    -------
    int
        Process exit code (see :func:`run_lint`).
    """
    return run_lint(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())

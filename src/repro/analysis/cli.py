"""Analyzer command line.

Run over one or more paths; exits non-zero when any finding (or any
unparsable file) remains::

    python -m repro.analysis src/ tests/
    python -m repro.analysis src/repro --format json
    python -m repro.analysis src --select RNG-001,PRIV-001
    repro lint src/ tests/
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.registry import get_rules
from repro.analysis.reporters import render_json, render_text
from repro.analysis.walker import analyze_paths


def _rule_list(value: str) -> list:
    return [item.strip() for item in value.split(",") if item.strip()]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyzer's arguments to ``parser``.

    Shared between ``python -m repro.analysis`` and the ``repro lint``
    subcommand so both accept identical options.

    Parameters
    ----------
    parser:
        Parser (or subparser) to extend.
    """
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to analyze "
                             "(default: src tests)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", type=_rule_list, default=None,
                        metavar="RULES",
                        help="comma-separated rule ids to run exclusively")
    parser.add_argument("--ignore", type=_rule_list, default=None,
                        metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")


def run_lint(arguments) -> int:
    """Execute the analyzer for parsed CLI ``arguments``.

    Parameters
    ----------
    arguments:
        Namespace produced by a parser set up with
        :func:`add_lint_arguments`.

    Returns
    -------
    int
        Process exit code: 0 when clean, 1 on findings or file errors,
        2 on usage errors (unknown rule id, missing path).
    """
    try:
        rules = get_rules(select=arguments.select, ignore=arguments.ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if arguments.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    try:
        findings, errors = analyze_paths(arguments.paths, rules=rules)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    renderer = render_json if arguments.format == "json" else render_text
    print(renderer(findings, errors))
    return 1 if findings or errors else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the standalone analyzer parser.

    Returns
    -------
    argparse.ArgumentParser
    """
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Repo-aware static analysis: RNG discipline, the "
                    "condensation statistics-only invariant, and Python "
                    "pitfalls.",
    )
    add_lint_arguments(parser)
    return parser


def main(argv=None) -> int:
    """Standalone entry point.

    Parameters
    ----------
    argv:
        Argument list; ``sys.argv[1:]`` when ``None``.

    Returns
    -------
    int
        Process exit code (see :func:`run_lint`).
    """
    return run_lint(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())

"""Checker registry.

Rules self-register via the :func:`register` decorator at import time;
:func:`get_rules` returns one instance per registered rule.  Keeping the
registry separate from the walker lets tests run a single rule in
isolation and lets the CLI offer ``--select``/``--ignore`` without any
rule knowing about either.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

_REGISTRY: dict[str, type] = {}


class Rule:
    """Base class for analysis rules.

    Subclasses set ``rule_id`` and ``summary`` and implement
    :meth:`check`.

    Attributes
    ----------
    rule_id:
        Stable identifier, e.g. ``"RNG-001"``; used in reports and
        suppression comments.
    summary:
        One-line description shown by ``--list-rules``.
    scope:
        ``"module"`` for rules that inspect one file at a time (the
        default), ``"project"`` for rules that need the whole-program
        index and run only under ``repro lint --project``.
    """

    rule_id: str = ""
    summary: str = ""
    scope: str = "module"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module.

        Parameters
        ----------
        module:
            Parsed module context.

        Yields
        ------
        Finding
            One finding per violation.
        """
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, node, message: str,
        trace: tuple = (),
    ) -> Finding:
        """Build a finding at an AST node's location.

        Parameters
        ----------
        module:
            Module the node belongs to.
        node:
            AST node carrying ``lineno``/``col_offset``.
        message:
            Violation message.
        trace:
            Optional source→sink hop descriptions (project rules).

        Returns
        -------
        Finding
        """
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            trace=tuple(trace),
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Project rules see the :class:`repro.analysis.project.ProjectIndex`
    instead of one module at a time; they implement :meth:`check_project`
    and yield nothing from the per-module :meth:`check` so the classic
    single-file pass stays unaffected.
    """

    scope = "project"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Project rules have no per-module findings.

        Parameters
        ----------
        module:
            Parsed module context (unused).

        Yields
        ------
        Finding
            Never; the method is an empty generator.
        """
        return
        yield  # pragma: no cover

    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings for the whole analyzed project.

        Parameters
        ----------
        project:
            A :class:`repro.analysis.project.ProjectIndex`.

        Yields
        ------
        Finding
            One finding per violation.
        """
        raise NotImplementedError


def register(rule_class: type) -> type:
    """Class decorator adding a rule to the registry.

    Parameters
    ----------
    rule_class:
        A :class:`Rule` subclass with a non-empty ``rule_id``.

    Returns
    -------
    type
        ``rule_class``, unchanged.

    Raises
    ------
    ValueError
        If the rule id is empty or already registered to a different
        class.
    """
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(f"{rule_class.__name__} has an empty rule_id")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(
            f"rule id {rule_id!r} already registered to {existing.__name__}"
        )
    _REGISTRY[rule_id] = rule_class
    return rule_class


def get_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Instantiate the registered rules.

    Parameters
    ----------
    select:
        If given, only these rule ids are returned.
    ignore:
        Rule ids to drop (applied after ``select``).

    Returns
    -------
    list of Rule
        Fresh instances, sorted by rule id.

    Raises
    ------
    ValueError
        If ``select`` or ``ignore`` names an unknown rule id.
    """
    # Importing the rules package populates the registry on first use.
    from repro.analysis import rules as _rules  # noqa: F401

    known = set(_REGISTRY)
    for name, wanted in (("select", select), ("ignore", ignore)):
        unknown = set(wanted or ()) - known
        if unknown:
            raise ValueError(
                f"unknown rule id(s) in {name}: {', '.join(sorted(unknown))}; "
                f"known rules: {', '.join(sorted(known))}"
            )
    chosen = set(select) if select is not None else known
    chosen -= set(ignore or ())
    return [_REGISTRY[rule_id]() for rule_id in sorted(chosen)]

"""Repo-aware static analysis for the condensation reproduction.

Machine-checks the two invariants the reproduction's credibility rests
on — RNG discipline (every stochastic path seeded through
``repro.linalg.rng``) and the paper's statistics-only condensation
invariant (§2: groups retain ``(Fs, Sc, n)``, never raw records) —
plus classic Python pitfalls and public-API docstring hygiene.

Built on stdlib ``ast`` only; no runtime dependencies beyond the
library itself.  See ``docs/static_analysis.md`` for the rule catalog
and suppression syntax.

>>> from repro.analysis import analyze_source
>>> findings = analyze_source(
...     "import numpy as np\\nnp.random.seed(0)\\n",
...     path="src/repro/core/x.py",
... )
>>> [finding.rule_id for finding in findings]
['RNG-001']
"""

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project import ProjectIndex, ProjectReport, run_project
from repro.analysis.registry import ProjectRule, Rule, get_rules, register
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
)
from repro.analysis.walker import (
    analyze_module,
    analyze_paths,
    analyze_source,
    iter_python_files,
)

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "ModuleContext",
    "ProjectIndex",
    "ProjectReport",
    "ProjectRule",
    "Rule",
    "SARIF_VERSION",
    "analyze_module",
    "analyze_paths",
    "analyze_source",
    "get_rules",
    "iter_python_files",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "run_project",
]

"""Per-line suppression comments.

A finding can be silenced with a trailing comment on the reported line::

    risky_call()  # repro-lint: disable=RNG-001

or with a standalone comment on the line directly above::

    # repro-lint: disable-next=PRIV-001  -- window buffer is transient
    self._buffer.append(record.copy())

Multiple rule ids are comma-separated; ``disable=all`` silences every
rule on that line.  Anything after two dashes (or a second ``#``) is a
free-form justification and is ignored by the parser — write one, the
reviewer will want it.
"""

from __future__ import annotations

import io
import re
import tokenize

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-next)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\-\s]+?)\s*(?:--|#|$)"
)

ALL = "all"


def parse_suppressions(source: str) -> dict[int, frozenset]:
    """Map line numbers to the rule ids suppressed on them.

    Parameters
    ----------
    source:
        Full module source text.

    Returns
    -------
    dict of int to frozenset of str
        For each suppressed line (1-based), the set of silenced rule
        ids; the sentinel :data:`ALL` means every rule.
    """
    suppressed: dict[int, set] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = [
            (number, line)
            for number, line in enumerate(source.splitlines(), start=1)
            if "#" in line
        ]
    for line_number, text in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = {
            rule.strip()
            for rule in match.group("rules").split(",")
            if rule.strip()
        }
        target = line_number + (1 if match.group("kind") == "disable-next" else 0)
        suppressed.setdefault(target, set()).update(rules)
    return {line: frozenset(rules) for line, rules in suppressed.items()}


def is_suppressed(
    suppressions: dict[int, frozenset], line: int, rule_id: str
) -> bool:
    """Whether ``rule_id`` is silenced on ``line``.

    Parameters
    ----------
    suppressions:
        Mapping from :func:`parse_suppressions`.
    line:
        1-based line number of the finding.
    rule_id:
        Rule identifier to test.

    Returns
    -------
    bool
    """
    rules = suppressions.get(line)
    if rules is None:
        return False
    return rule_id in rules or ALL in rules

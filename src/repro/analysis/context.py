"""Per-module context handed to every analysis rule.

The context bundles the parsed AST with repo-aware facts the rules need:
whether the module is test code, whether it lives in a privacy-critical
package (``core``/``stream``/``parallel``/``durability``/``serve``), and whether it is the one
module allowed to construct generators (``linalg/rng.py``).  Deriving those facts once,
from the path, keeps the rules themselves small and uniform.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath


def _normalized_parts(path: str) -> tuple[str, ...]:
    return PurePosixPath(path.replace("\\", "/")).parts


@dataclass
class ModuleContext:
    """Everything a rule may ask about the module under analysis.

    Attributes
    ----------
    path:
        Path of the module, as given to the analyzer (display form).
    source:
        Full text of the module.
    tree:
        Parsed ``ast.Module`` for the source.
    """

    path: str
    source: str
    tree: ast.Module
    _parts: tuple[str, ...] = field(init=False, repr=False)

    def __post_init__(self):
        self._parts = _normalized_parts(self.path)

    @classmethod
    def from_source(cls, source: str, path: str = "<memory>") -> "ModuleContext":
        """Build a context by parsing ``source``.

        Parameters
        ----------
        source:
            Python source text.
        path:
            Path used for scoping decisions and finding locations; pass
            a virtual path such as ``"src/repro/core/x.py"`` to exercise
            path-scoped rules on in-memory snippets.

        Returns
        -------
        ModuleContext
            The parsed context.

        Raises
        ------
        SyntaxError
            If ``source`` does not parse.
        """
        return cls(path=path, source=source, tree=ast.parse(source))

    @property
    def filename(self) -> str:
        """Base name of the module file.

        Returns
        -------
        str
            The final path component.
        """
        return self._parts[-1] if self._parts else self.path

    @property
    def is_test_module(self) -> bool:
        """Whether the module is test code.

        Test modules live under a ``tests`` directory or are named
        ``test_*.py`` / ``conftest.py``.  Rules relax some requirements
        there (e.g. seeded generator construction is allowed).

        Returns
        -------
        bool
        """
        if "tests" in self._parts:
            return True
        name = self.filename
        return name.startswith("test_") or name == "conftest.py"

    @property
    def is_rng_module(self) -> bool:
        """Whether this is ``repro/linalg/rng.py``, the RNG authority.

        Returns
        -------
        bool
        """
        return self._parts[-3:] == ("repro", "linalg", "rng.py") or (
            self._parts[-2:] == ("linalg", "rng.py")
        )

    def in_repro_package(self, package: str) -> bool:
        """Whether the module lives under ``repro/<package>/``.

        Parameters
        ----------
        package:
            Sub-package name, e.g. ``"core"`` or ``"stream"``.

        Returns
        -------
        bool
        """
        parts = self._parts
        for index in range(len(parts) - 1):
            if parts[index] == "repro" and parts[index + 1] == package:
                return True
        return False

    @property
    def is_privacy_critical(self) -> bool:
        """Whether the module must uphold the statistics-only invariant.

        The condensation invariant (paper §2: groups retain only
        ``(Fs, Sc, n)``) is enforced in ``repro/core``,
        ``repro/stream``, ``repro/parallel``, ``repro/durability``
        and ``repro/serve`` — the sharded engine handles raw records
        in flight exactly like the serial algorithm, the durability
        layer persists condenser state to disk, and the serving layer
        receives raw records over HTTP and must answer every read
        endpoint from statistics only, so all are held to the same
        retention and serialization rules.

        Returns
        -------
        bool
        """
        return (
            self.in_repro_package("core")
            or self.in_repro_package("stream")
            or self.in_repro_package("parallel")
            or self.in_repro_package("durability")
            or self.in_repro_package("serve")
        )

"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """Flatten a ``Name``/``Attribute`` chain into ``"a.b.c"``.

    Parameters
    ----------
    node:
        Candidate expression node.

    Returns
    -------
    str or None
        The dotted path, or ``None`` if the chain contains anything but
        names and attribute accesses (calls, subscripts, ...).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def numpy_random_aliases(tree: ast.Module) -> tuple[set, set, dict]:
    """Collect the names this module binds to numpy RNG machinery.

    Parameters
    ----------
    tree:
        Parsed module.

    Returns
    -------
    tuple
        ``(numpy_names, random_module_names, imported_functions)`` where
        ``numpy_names`` are aliases of the ``numpy`` package,
        ``random_module_names`` are aliases of ``numpy.random``, and
        ``imported_functions`` maps local names to the ``numpy.random``
        attribute they were imported from (e.g. ``{"default_rng":
        "default_rng"}`` for ``from numpy.random import default_rng``).
    """
    numpy_names: set = set()
    random_names: set = set()
    functions: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random":
                    if alias.asname is not None:
                        random_names.add(alias.asname)
                    else:
                        # ``import numpy.random`` binds ``numpy``.
                        numpy_names.add("numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_names.add(alias.asname or "random")
            elif node.module == "numpy.random":
                for alias in node.names:
                    functions[alias.asname or alias.name] = alias.name
    return numpy_names, random_names, functions


def call_argument_count(node: ast.Call) -> int:
    """Number of positional plus keyword arguments of a call.

    Parameters
    ----------
    node:
        Call node.

    Returns
    -------
    int
    """
    return len(node.args) + len(node.keywords)


def parent_map(tree: ast.Module) -> dict:
    """Map each node in ``tree`` to its parent node.

    Parameters
    ----------
    tree:
        Parsed module.

    Returns
    -------
    dict
        ``child -> parent`` for every node reachable from ``tree``.
    """
    parents: dict = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents

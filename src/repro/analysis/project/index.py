"""One-pass project index: symbols, imports, and an approximate call graph.

The per-module analyzer (PR 1) sees one file at a time, so a raw-record
array that crosses a function or module boundary escapes its checks.
The :class:`ProjectIndex` restores the missing context in a single pass
over the analyzed tree:

* a **module table** mapping dotted module names to parsed
  :class:`repro.analysis.context.ModuleContext` objects;
* per-module **symbol tables** — every ``def`` (module-level and
  method) with its parameters, plus the import bindings that make names
  resolvable across files, including package ``__init__`` re-exports
  and relative imports;
* an **import graph** (module → directly imported project modules),
  which also drives the incremental cache's transitive invalidation;
* an approximate **call graph** (function → resolvable callees).

The call graph is deliberately approximate: plain-name calls, imported
names, ``self.method()`` / ``cls.method()`` within a class, and
``ClassName.method()`` through an imported class resolve; calls through
arbitrary instance variables do not.  Both the taint engine and the
determinism rules are built to over- or under-approximate *safely*
under that model (see ``docs/static_analysis.md``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterable

from repro.analysis.astutils import dotted_name
from repro.analysis.context import ModuleContext

#: Path components stripped before deriving a dotted module name.
_ROOT_MARKERS = ("src",)

#: Maximum re-export chain length followed during name resolution.
_MAX_ALIAS_HOPS = 16


def module_name_for_path(path: str) -> str:
    """Derive a dotted module name from a file path.

    ``src/repro/core/generation.py`` becomes ``repro.core.generation``;
    package ``__init__.py`` files map to the package itself.  Paths
    outside a ``src`` root (tests, benchmarks) use their remaining
    components verbatim, so ``tests/core/test_x.py`` becomes
    ``tests.core.test_x``.

    Parameters
    ----------
    path:
        File path as given to the analyzer.

    Returns
    -------
    str
        The dotted module name.
    """
    parts = list(PurePosixPath(str(path).replace("\\", "/")).parts)
    for marker in _ROOT_MARKERS:
        if marker in parts:
            parts = parts[parts.index(marker) + 1:]
            break
    else:
        # Absolute paths: keep only the components from the last
        # recognizable package root onward.
        for root in ("repro", "tests", "benchmarks", "examples"):
            if root in parts:
                parts = parts[parts.index(root):]
                break
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    parts[-1] = leaf
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass
class FunctionInfo:
    """One indexed ``def``: a module-level function or a method.

    Attributes
    ----------
    qualname:
        Fully qualified name, e.g.
        ``"repro.core.condensation.create_condensed_groups"`` or
        ``"repro.core.statistics.GroupStatistics.add"``.
    module:
        Dotted name of the defining module.
    node:
        The ``ast.FunctionDef`` / ``ast.AsyncFunctionDef``.
    params:
        Positional and keyword parameter names, in order (including
        ``self``/``cls`` for methods).
    class_name:
        Enclosing class name for methods, ``None`` for module-level
        functions.
    """

    qualname: str
    module: str
    node: ast.AST
    params: list = field(default_factory=list)
    class_name: str | None = None

    @property
    def name(self) -> str:
        """Bare function name (the last qualname segment).

        Returns
        -------
        str
        """
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleInfo:
    """Symbol table and import bindings of one indexed module.

    Attributes
    ----------
    name:
        Dotted module name.
    context:
        Parsed :class:`ModuleContext` (path, source, tree).
    imports:
        Local name → fully qualified target, e.g. ``{"np": "numpy",
        "telemetry": "repro.telemetry"}``.
    functions:
        Local qualname suffix (``"f"`` or ``"Class.m"``) →
        :class:`FunctionInfo`.
    classes:
        Local class name → fully qualified class name.
    module_level_names:
        Names bound by module-level assignments — the state the
        determinism rules guard against worker mutation.
    """

    name: str
    context: ModuleContext
    imports: dict = field(default_factory=dict)
    functions: dict = field(default_factory=dict)
    classes: dict = field(default_factory=dict)
    module_level_names: set = field(default_factory=set)

    @property
    def path(self) -> str:
        """Display path of the module file.

        Returns
        -------
        str
        """
        return self.context.path


def _parameter_names(node) -> list:
    """All positional/keyword parameter names of a ``def``, in order."""
    arguments = node.args
    names = [argument.arg for argument in arguments.posonlyargs]
    names += [argument.arg for argument in arguments.args]
    names += [argument.arg for argument in arguments.kwonlyargs]
    if arguments.vararg is not None:
        names.append(arguments.vararg.arg)
    if arguments.kwarg is not None:
        names.append(arguments.kwarg.arg)
    return names


def _resolve_relative(
    module_name: str, node: ast.ImportFrom, is_package: bool
) -> str:
    """Absolute dotted form of a possibly-relative ``from`` target."""
    if not node.level:
        return node.module or ""
    base = module_name.split(".")
    # ``from . import x`` resolves against the containing package: a
    # plain module drops its own leaf, while a package ``__init__``
    # (whose dotted name already *is* the package) drops one fewer.
    drop = node.level - 1 if is_package else node.level
    base = base[: len(base) - drop] if drop < len(base) else []
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


class ProjectIndex:
    """Whole-program view of the analyzed tree.

    Build one with :meth:`from_contexts` (or the convenience
    :func:`build_index`); rules then query modules, resolve dotted
    names across files, and walk the call graph.

    Attributes
    ----------
    modules:
        Dotted module name → :class:`ModuleInfo`.
    functions:
        Fully qualified name → :class:`FunctionInfo`, across all
        modules.
    """

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self._call_graph: dict[str, set] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_contexts(cls, contexts: Iterable[ModuleContext]) -> "ProjectIndex":
        """Index a collection of parsed modules.

        Parameters
        ----------
        contexts:
            Parsed module contexts, one per file.

        Returns
        -------
        ProjectIndex
        """
        index = cls()
        for context in contexts:
            index._add_module(context)
        return index

    def _add_module(self, context: ModuleContext) -> None:
        """Index one module: imports, defs, classes, module state."""
        name = module_name_for_path(context.path)
        info = ModuleInfo(name=name, context=context)
        self._collect_imports(info)
        self._collect_definitions(info)
        self._collect_module_state(info)
        self.modules[name] = info

    def _collect_imports(self, info: ModuleInfo) -> None:
        """Record every import binding, wherever it appears."""
        is_package = info.context.filename == "__init__.py"
        for node in ast.walk(info.context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        info.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        info.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_relative(info.name, node, is_package)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = (
                        f"{target}.{alias.name}" if target else alias.name
                    )

    def _collect_definitions(self, info: ModuleInfo) -> None:
        """Record module-level defs, classes, and their methods."""
        for node in info.context.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                info.classes[node.name] = f"{info.name}.{node.name}"
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._add_function(info, item, class_name=node.name)

    def _add_function(self, info, node, class_name) -> None:
        """Register one def in the module and global tables."""
        local = f"{class_name}.{node.name}" if class_name else node.name
        qualname = f"{info.name}.{local}"
        function = FunctionInfo(
            qualname=qualname,
            module=info.name,
            node=node,
            params=_parameter_names(node),
            class_name=class_name,
        )
        info.functions[local] = function
        self.functions[qualname] = function

    def _collect_module_state(self, info: ModuleInfo) -> None:
        """Record names bound by module-level assignments."""
        for node in info.context.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                for element in ast.walk(target):
                    if isinstance(element, ast.Name):
                        info.module_level_names.add(element.id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def module_for_path(self, path: str) -> ModuleInfo | None:
        """Look up the indexed module for a file path.

        Parameters
        ----------
        path:
            File path as given to the analyzer.

        Returns
        -------
        ModuleInfo or None
        """
        return self.modules.get(module_name_for_path(path))

    def import_graph(self) -> dict:
        """Direct project-internal imports of every module.

        Returns
        -------
        dict of str to set of str
            Module name → names of directly imported modules that are
            part of this index (external imports are dropped).
        """
        graph = {}
        for name, info in self.modules.items():
            deps = set()
            for target in info.imports.values():
                dep = self._owning_module(target)
                if dep is not None and dep != name:
                    deps.add(dep)
            graph[name] = deps
        return graph

    def _owning_module(self, qualified: str) -> str | None:
        """Longest indexed module prefix of a qualified name."""
        parts = qualified.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    def resolve(self, module: ModuleInfo, dotted: str) -> str | None:
        """Resolve a dotted name used in ``module`` to a qualified name.

        Follows import bindings and package-``__init__`` re-exports, so
        ``telemetry.span`` inside a module that does ``from repro
        import telemetry`` resolves to the defining
        ``repro.telemetry.spans.span``.

        Parameters
        ----------
        module:
            Module the name appears in.
        dotted:
            The dotted name as written, e.g. ``"np.save"`` or
            ``"GroupStatistics.from_records"``.

        Returns
        -------
        str or None
            The fully qualified name, or ``None`` for names that do not
            resolve through the index (builtins, locals, attributes of
            instances).
        """
        head, _, rest = dotted.partition(".")
        if head in module.functions and not rest:
            return module.functions[head].qualname
        if head in module.classes:
            qualified = module.classes[head]
        elif head in module.imports:
            qualified = module.imports[head]
        else:
            return None
        if rest:
            qualified = f"{qualified}.{rest}"
        return self._follow_aliases(qualified)

    def _follow_aliases(self, qualified: str) -> str:
        """Rewrite a qualified name through re-export chains."""
        for _ in range(_MAX_ALIAS_HOPS):
            if qualified in self.functions:
                return qualified
            owner = self._owning_module(qualified)
            if owner is None:
                return qualified
            rest = qualified[len(owner):].lstrip(".")
            if not rest:
                return qualified
            info = self.modules[owner]
            head, _, tail = rest.partition(".")
            if head in info.functions and not tail:
                return info.functions[head].qualname
            if f"{head}.{tail}" in info.functions:
                return info.functions[f"{head}.{tail}"].qualname
            if head in info.classes:
                rewritten = info.classes[head]
            elif head in info.imports:
                rewritten = info.imports[head]
            else:
                return qualified
            candidate = f"{rewritten}.{tail}" if tail else rewritten
            if candidate == qualified:
                return qualified
            qualified = candidate
        return qualified

    def resolve_function(self, module, dotted, class_name=None):
        """Resolve a called dotted name to an indexed function.

        Parameters
        ----------
        module:
            :class:`ModuleInfo` the call appears in.
        dotted:
            Call target as written (``"f"``, ``"np.save"``,
            ``"self.split"``, ...).
        class_name:
            Name of the enclosing class when resolving inside a method,
            enabling ``self.method()`` / ``cls.method()`` resolution.

        Returns
        -------
        FunctionInfo or None
        """
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and class_name and rest:
            method = rest.split(".")[0]
            return self.functions.get(
                f"{module.name}.{class_name}.{method}"
            )
        qualified = self.resolve(module, dotted)
        if qualified is None:
            return None
        function = self.functions.get(qualified)
        if function is not None:
            return function
        # ``ClassName.method`` through an imported class: the resolved
        # class qualname plus the method suffix.
        owner = self._owning_module(qualified)
        if owner is not None:
            suffix = qualified[len(owner):].lstrip(".")
            return self.modules[owner].functions.get(suffix)
        return None

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------

    def call_graph(self) -> dict:
        """Resolvable callees of every indexed function.

        Returns
        -------
        dict of str to set of str
            Function qualname → qualnames of indexed functions it
            calls (unresolvable calls are dropped).
        """
        if self._call_graph is None:
            graph = {}
            for qualname, function in self.functions.items():
                info = self.modules[function.module]
                callees = set()
                for node in ast.walk(function.node):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = self.resolve_function(
                        info, dotted_name(node.func),
                        class_name=function.class_name,
                    )
                    if callee is not None:
                        callees.add(callee.qualname)
                graph[qualname] = callees
            self._call_graph = graph
        return self._call_graph

    def reachable_from(self, roots: Iterable[str]) -> dict:
        """Functions reachable from ``roots`` through the call graph.

        Parameters
        ----------
        roots:
            Starting function qualnames.

        Returns
        -------
        dict of str to list of str
            Reachable qualname → shortest call path from a root
            (root first, the function itself last).
        """
        graph = self.call_graph()
        paths = {}
        frontier = []
        for root in roots:
            if root in graph and root not in paths:
                paths[root] = [root]
                frontier.append(root)
        while frontier:
            current = frontier.pop(0)
            for callee in sorted(graph.get(current, ())):
                if callee not in paths:
                    paths[callee] = paths[current] + [callee]
                    frontier.append(callee)
        return paths

    def worker_roots(self) -> list:
        """Functions handed to executor pools in ``repro.parallel``.

        Scans parallel-package modules for ``pool.map(f, ...)`` /
        ``pool.submit(f, ...)`` / ``apply_async(f, ...)`` call sites
        and resolves the function arguments — the entry points of the
        worker-count-independence (determinism) contract.

        Returns
        -------
        list of str
            Sorted qualnames of worker entry functions.
        """
        roots = set()
        for info in self.modules.values():
            if ".parallel" not in f".{info.name}":
                continue
            for node in ast.walk(info.context.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("map", "submit", "apply_async")
                ):
                    continue
                target = dotted_name(node.args[0])
                if target is None:
                    continue
                resolved = self.resolve_function(info, target)
                if resolved is not None:
                    roots.add(resolved.qualname)
        return sorted(roots)


def build_index(contexts: Iterable[ModuleContext]) -> ProjectIndex:
    """Build a :class:`ProjectIndex` from parsed module contexts.

    Parameters
    ----------
    contexts:
        Parsed module contexts, one per file.

    Returns
    -------
    ProjectIndex
    """
    return ProjectIndex.from_contexts(contexts)

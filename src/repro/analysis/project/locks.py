"""Interprocedural lock-set inference for the THR rule family.

The serving plane (PR 7) put a ``ThreadingHTTPServer`` in front of
shared condenser state; none of the per-module rules can see whether
that state is actually accessed under its lock, whether two locks are
ever taken in opposite orders, or whether the hot path performs
blocking I/O while holding one.  :class:`LockSetEngine` restores that
visibility on top of the existing :class:`~repro.analysis.project.index.ProjectIndex`:

* **lock discovery** — ``self._lock = threading.RLock()`` attribute
  locks, module-level locks, and *collection* locks
  (``self._shard_locks = [threading.RLock() for ...]``), which are
  modeled as one composite identity: acquiring any element acquires
  the composite (a deliberate, documented approximation);
* **thread roots** — ``do_*`` methods of HTTP handler classes,
  resolved ``threading.Thread(target=...)`` callables, pool-submitted
  worker roots (the CONC discovery), and ``serve_forever`` loops.
  Serve-loop roots participate in reachability (for the deadlock and
  blocking rules) but are excluded from shared-attribute recording, so
  single-threaded construction code does not pollute the race
  analysis;
* **a must/may fixpoint** over an *augmented* call graph — the base
  graph plus duck-typed resolution of ``receiver.method()`` calls
  (unique method name across runtime classes, with a serve-class
  tiebreak for call sites inside ``repro.serve``) and ``self.method``
  *references* (bound methods stashed in dispatch tables) — yielding,
  for every reachable function, the locks certainly held on entry
  (intersection over call sites) and possibly held (union);
* **guard inference** — each tracked attribute's guarding lock is
  learned from the majority of its concurrent-reachable accesses, so
  the discipline is read off the code instead of demanded up front.

The intraprocedural walker understands ``with lock:`` regions
(including re-entrant re-acquisition, which adds nothing),
``lock.acquire()``/``lock.release()`` pairs (the ``try/finally``
idiom), ``stack.enter_context(lock)``, and lock aliasing through local
assignment and ``for lock in self._shard_locks:`` loops.  Acquisitions
inside a branch deliberately leak to the rest of the enclosing body
(an over-approximation that favors the deadlock/blocking rules).

Shared-attribute tracking is restricted to classes defined in
``repro.serve``: the engine is object-insensitive, and extending it to
core statistics classes would conflate worker-local condensers with
the serve-shared ones.  Telemetry modules are exempt end to end — they
hold their own short internal locks by design and are never traversed.
"""

from __future__ import annotations

import ast
import weakref
from collections import deque
from dataclasses import dataclass, field

from repro.analysis.astutils import dotted_name
from repro.analysis.rules.determinism import _MUTATOR_METHODS
from repro.analysis.rules.protocol import is_runtime_module

#: Resolved constructors whose result is a lock object.
_LOCK_TYPES = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
})

#: Resolved call targets that block the calling thread on I/O or time.
_BLOCKING_CALLS = {
    "os.fsync": "os.fsync()",
    "os.fdatasync": "os.fdatasync()",
    "time.sleep": "time.sleep()",
    "socket.create_connection": "socket.create_connection()",
    "urllib.request.urlopen": "urllib.request.urlopen()",
    "subprocess.run": "subprocess.run()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "subprocess.Popen": "subprocess.Popen()",
}

#: Receiver-method names treated as blocking wherever they appear:
#: a checkpoint is snapshot I/O no matter which object performs it.
#: Plain WAL appends are deliberately absent — synchronous append
#: durability is the product contract, not a latency bug.
_BLOCKING_METHODS = frozenset({"checkpoint"})

#: Method names never duck-resolved: collection/ndarray vocabulary and
#: boundary methods whose cross-layer edges would drag the whole core
#: ingest path into the serve lock analysis.
_DUCK_SKIP = frozenset(_MUTATOR_METHODS) | frozenset({
    "get", "put", "items", "keys", "values", "copy", "read", "write",
    "flush", "fileno", "join", "split", "strip", "format", "mean",
    "sum", "std", "min", "max", "any", "all", "start", "shutdown",
    "tolist", "astype", "reshape", "fit", "partial_fit", "journal_rng",
    "route", "to_dict", "to_state", "set_attribute",
})

#: Root kinds that denote genuinely concurrent entry points.
_CONCURRENT_KINDS = frozenset({"handler", "thread", "pool"})


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock identity.

    Attributes
    ----------
    lock_id:
        Stable qualified identity, e.g.
        ``"repro.serve.service.ShardedCondensationService._lock"``.
    display:
        Short human form used in findings, e.g.
        ``"ShardedCondensationService._lock"``.
    module:
        Defining module name.
    collection:
        ``True`` for a list/collection of locks modeled as one
        composite identity.
    line:
        Definition line (for traces).
    """

    lock_id: str
    display: str
    module: str
    collection: bool = False
    line: int = 0


@dataclass(frozen=True)
class ThreadRoot:
    """One inferred thread entry point.

    Attributes
    ----------
    qualname:
        Root function qualname.
    kind:
        ``"handler"``, ``"thread"``, ``"pool"`` or ``"serve-loop"``.
    """

    qualname: str
    kind: str


@dataclass(frozen=True)
class AttributeAccess:
    """One concurrent-reachable access to a tracked shared attribute.

    Attributes
    ----------
    attr_id:
        Qualified attribute identity (``module.Class.attr``).
    function:
        Qualname of the accessing function.
    node:
        The access AST node (location carrier).
    write:
        Whether the access stores, deletes, augments or mutates.
    must_held / may_held:
        Lock ids certainly / possibly held at the access.
    path:
        Shortest discovered root→function call path.
    """

    attr_id: str
    function: str
    node: ast.AST
    write: bool
    must_held: frozenset
    may_held: frozenset
    path: tuple


@dataclass(frozen=True)
class BlockingSite:
    """One blocking operation on a root-reachable path.

    Attributes
    ----------
    function:
        Enclosing function qualname.
    node:
        The blocking call node.
    description:
        Human description, e.g. ``"os.fsync()"``.
    held:
        Lock ids possibly held at the call.
    path:
        Root→function call path.
    """

    function: str
    node: ast.AST
    description: str
    held: frozenset
    path: tuple


@dataclass(frozen=True)
class LockOrderEdge:
    """One ``holding A, acquires B`` acquisition-order edge.

    Attributes
    ----------
    first / second:
        Lock ids: ``first`` is held while ``second`` is acquired.
    function:
        Function containing the acquisition.
    node:
        The acquisition site.
    """

    first: str
    second: str
    function: str
    node: ast.AST


@dataclass(frozen=True)
class LockRegion:
    """One ``with lock:`` region and the tracked attributes it touches.

    Attributes
    ----------
    function:
        Enclosing function qualname.
    lock_id:
        The region's lock.
    node:
        The ``with`` statement (location carrier).
    reads / writes:
        Tracked attribute ids read / written inside the region.
    """

    function: str
    lock_id: str
    node: ast.AST
    reads: frozenset
    writes: frozenset


@dataclass
class _Summary:
    """Per-function walker output, combined with entry sets later."""

    calls: list = field(default_factory=list)
    accesses: list = field(default_factory=list)
    acquires: list = field(default_factory=list)
    blocking: list = field(default_factory=list)
    regions: list = field(default_factory=list)


_ENGINE_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def lock_sets(project) -> "LockSetEngine":
    """Build (or reuse) the lock-set engine for a project index.

    The four THR rules all ride the same analysis; memoizing per index
    keeps ``repro lint --project`` from paying the fixpoint four times.

    Parameters
    ----------
    project:
        The :class:`~repro.analysis.project.index.ProjectIndex`.

    Returns
    -------
    LockSetEngine
        The (possibly cached) engine, fully analyzed.
    """
    engine = _ENGINE_CACHE.get(project)
    if engine is None:
        engine = LockSetEngine.build(project)
        _ENGINE_CACHE[project] = engine
    return engine


class LockSetEngine:
    """Whole-program lock-set analysis over one project index.

    Build with :meth:`build` (or the memoized :func:`lock_sets`); the
    public attributes then hold everything the THR rules consume.

    Attributes
    ----------
    locks:
        Lock id → :class:`LockInfo`.
    roots:
        Root qualname → :class:`ThreadRoot`.
    accesses:
        Ordered :class:`AttributeAccess` list (concurrent-reachable,
        ``__init__``/``__new__`` excluded).
    blocking_sites:
        Ordered :class:`BlockingSite` list (any-root-reachable).
    order_edges:
        Deduplicated :class:`LockOrderEdge` list.
    regions:
        Function qualname → :class:`LockRegion` list
        (concurrent-reachable functions only).
    attr_roots:
        Tracked attribute id → set of concurrent roots reaching any of
        its accessors.
    """

    def __init__(self, project):
        self.project = project
        self.locks: dict = {}
        self.roots: dict = {}
        self.tracked_attrs: set = set()
        self.accesses: list = []
        self.blocking_sites: list = []
        self.order_edges: list = []
        self.regions: dict = {}
        self.attr_roots: dict = {}
        self._summaries: dict = {}
        self._entry_must: dict = {}
        self._entry_may: dict = {}
        self._reach_roots: dict = {}
        self._parent: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, project) -> "LockSetEngine":
        """Run the full analysis over ``project``.

        Parameters
        ----------
        project:
            The project index.

        Returns
        -------
        LockSetEngine
        """
        engine = cls(project)
        engine._collect_locks()
        engine._collect_tracked_attributes()
        engine._discover_roots()
        engine._fixpoint()
        engine._assemble()
        return engine

    def _scoped_modules(self):
        """Runtime, non-telemetry modules, in deterministic order."""
        for name in sorted(self.project.modules):
            info = self.project.modules[name]
            if not is_runtime_module(info):
                continue
            if info.context.in_repro_package("telemetry"):
                continue
            yield info

    def _in_scope(self, qualname: str) -> bool:
        """Whether a function may be traversed by the fixpoint."""
        function = self.project.functions.get(qualname)
        if function is None:
            return False
        info = self.project.modules.get(function.module)
        if info is None or not is_runtime_module(info):
            return False
        return not info.context.in_repro_package("telemetry")

    # -- lock table -----------------------------------------------------

    def _is_lock_constructor(self, info, expression) -> bool:
        """Whether an expression constructs a lock object."""
        if not isinstance(expression, ast.Call):
            return False
        dotted = dotted_name(expression.func)
        if dotted is None:
            return False
        resolved = self.project.resolve(info, dotted) or dotted
        return resolved in _LOCK_TYPES

    def _is_lock_collection(self, info, expression) -> bool:
        """Whether an expression builds a list/tuple of lock objects."""
        if isinstance(expression, (ast.List, ast.Tuple)):
            return bool(expression.elts) and all(
                self._is_lock_constructor(info, element)
                for element in expression.elts
            )
        if isinstance(expression, (ast.ListComp, ast.GeneratorExp)):
            return self._is_lock_constructor(info, expression.elt)
        return False

    def _collect_locks(self) -> None:
        """Discover module-level, attribute, and collection locks."""
        for info in self._scoped_modules():
            for node in info.context.tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    name = node.targets[0].id
                    if self._is_lock_constructor(info, node.value):
                        self._add_lock(f"{info.name}.{name}", name,
                                       info.name, False, node.lineno)
                    elif self._is_lock_collection(info, node.value):
                        self._add_lock(f"{info.name}.{name}", name,
                                       info.name, True, node.lineno)
            for class_node in info.context.tree.body:
                if not isinstance(class_node, ast.ClassDef):
                    continue
                for node in ast.walk(class_node):
                    if not (isinstance(node, ast.Assign)
                            and len(node.targets) == 1):
                        continue
                    target = node.targets[0]
                    if not (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        continue
                    lock_id = f"{info.name}.{class_node.name}.{target.attr}"
                    display = f"{class_node.name}.{target.attr}"
                    if self._is_lock_constructor(info, node.value):
                        self._add_lock(lock_id, display, info.name,
                                       False, node.lineno)
                    elif self._is_lock_collection(info, node.value):
                        self._add_lock(lock_id, display, info.name,
                                       True, node.lineno)

    def _add_lock(self, lock_id, display, module, collection, line):
        """Register one lock identity."""
        self.locks[lock_id] = LockInfo(
            lock_id=lock_id, display=display, module=module,
            collection=collection, line=line,
        )

    # -- tracked attributes --------------------------------------------

    def _collect_tracked_attributes(self) -> None:
        """Shared mutable attributes of classes defined in ``repro.serve``.

        An attribute is tracked when it is assigned somewhere in the
        class *and* either rebound outside ``__init__`` or mutated in
        place (mutator method call) anywhere — read-only configuration
        set once in the constructor is free to read without a lock.
        """
        for info in self._scoped_modules():
            if not info.name.startswith("repro.serve"):
                continue
            for class_node in info.context.tree.body:
                if not isinstance(class_node, ast.ClassDef):
                    continue
                assigned: set = set()
                written_hot: set = set()
                for method in class_node.body:
                    if not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    in_init = method.name in ("__init__", "__new__")
                    for node in ast.walk(method):
                        attr = _self_attribute(node)
                        if attr is not None and isinstance(
                            node.ctx, (ast.Store, ast.Del)
                        ):
                            assigned.add(attr)
                            if not in_init:
                                written_hot.add(attr)
                        elif isinstance(node, ast.Call) and isinstance(
                            node.func, ast.Attribute
                        ) and node.func.attr in _MUTATOR_METHODS:
                            receiver = _self_attribute(node.func.value)
                            if receiver is not None:
                                written_hot.add(receiver)
                for attr in assigned & written_hot:
                    attr_id = f"{info.name}.{class_node.name}.{attr}"
                    if attr_id not in self.locks:
                        self.tracked_attrs.add(attr_id)

    # -- thread roots ---------------------------------------------------

    def _discover_roots(self) -> None:
        """Find handler methods, thread targets, pools, serve loops."""
        for info in self._scoped_modules():
            for class_node in info.context.tree.body:
                if isinstance(class_node, ast.ClassDef) \
                        and self._is_handler_class(info, class_node):
                    for method in class_node.body:
                        if isinstance(
                            method, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ) and method.name.startswith("do_"):
                            qualname = (f"{info.name}.{class_node.name}"
                                        f".{method.name}")
                            self._add_root(qualname, "handler")
            for function in info.functions.values():
                for node in ast.walk(function.node):
                    if not isinstance(node, ast.Call):
                        continue
                    dotted = dotted_name(node.func)
                    resolved = (
                        self.project.resolve(info, dotted) or dotted
                        if dotted else None
                    )
                    if resolved == "threading.Thread":
                        target = self._thread_target(info, function, node)
                        if target is not None:
                            self._add_root(target, "thread")
                    elif isinstance(node.func, ast.Attribute) \
                            and node.func.attr == "serve_forever":
                        self._add_root(function.qualname, "serve-loop")
        for qualname in self.project.worker_roots():
            self._add_root(qualname, "pool")

    def _is_handler_class(self, info, class_node) -> bool:
        """Whether a class subclasses an HTTP request handler."""
        for base in class_node.bases:
            dotted = dotted_name(base)
            if dotted is None:
                continue
            resolved = self.project.resolve(info, dotted) or dotted
            if resolved.endswith("BaseHTTPRequestHandler") \
                    or resolved.endswith("RequestHandler"):
                return True
        return False

    def _thread_target(self, info, function, call) -> str | None:
        """Resolve a ``threading.Thread(target=...)`` callable."""
        for keyword in call.keywords:
            if keyword.arg != "target":
                continue
            dotted = dotted_name(keyword.value)
            if dotted is None:
                return None
            resolved = self.project.resolve_function(
                info, dotted, class_name=function.class_name
            )
            if resolved is None:
                resolved = self._duck_candidates(
                    dotted.rsplit(".", 1)[-1], function, info
                )
            return resolved.qualname if resolved is not None else None
        return None

    def _add_root(self, qualname, kind) -> None:
        """Register a root, preferring concurrent over serve-loop."""
        existing = self.roots.get(qualname)
        if existing is not None and existing.kind in _CONCURRENT_KINDS:
            return
        self.roots[qualname] = ThreadRoot(qualname=qualname, kind=kind)

    # ------------------------------------------------------------------
    # Duck-typed call resolution
    # ------------------------------------------------------------------

    def _duck_table(self) -> dict:
        """Method name → candidate FunctionInfos across runtime classes."""
        table = getattr(self, "_duck", None)
        if table is None:
            table = {}
            for info in self._scoped_modules():
                for function in info.functions.values():
                    if function.class_name is None:
                        continue
                    table.setdefault(function.name, []).append(function)
            self._duck = table
        return table

    def _duck_candidates(self, method, caller, info):
        """Resolve ``receiver.method()`` by method-name uniqueness.

        A unique runtime definition resolves anywhere; with several
        candidates, call sites inside ``repro.serve`` prefer the (then
        unique) serve-plane class.  Candidates on the caller's own
        class are dropped first — an unqualified same-class method
        reached through a foreign receiver almost always means a
        *different* type (``shard.checkpoint()`` inside the service is
        the condenser's checkpoint, not the service's).
        """
        if method.startswith("__") or method in _DUCK_SKIP:
            return None
        candidates = [
            candidate
            for candidate in self._duck_table().get(method, ())
            if not (caller.class_name is not None
                    and candidate.class_name == caller.class_name
                    and candidate.module == caller.module)
        ]
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1 and info.name.startswith("repro.serve"):
            serve = [candidate for candidate in candidates
                     if candidate.module.startswith("repro.serve")]
            if len(serve) == 1:
                return serve[0]
        return None

    # ------------------------------------------------------------------
    # Intraprocedural walker
    # ------------------------------------------------------------------

    def _summary(self, qualname) -> _Summary | None:
        """Compute (memoized) the walker summary of one function."""
        if qualname in self._summaries:
            return self._summaries[qualname]
        summary = None
        if self._in_scope(qualname):
            function = self.project.functions[qualname]
            info = self.project.modules[function.module]
            summary = _Summary()
            self._walk_body(
                function.node.body, set(), {}, function, info, summary
            )
        self._summaries[qualname] = summary
        return summary

    def _walk_body(self, statements, held, aliases,
                   function, info, summary) -> None:
        """Walk one statement list, threading the mutable held set."""
        for statement in statements:
            self._walk_statement(
                statement, held, aliases, function, info, summary
            )

    def _walk_statement(self, statement, held, aliases,
                        function, info, summary) -> None:
        """Dispatch one statement; compound bodies recurse."""
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            return
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            self._walk_with(
                statement, held, aliases, function, info, summary
            )
            return
        if isinstance(statement, ast.Assign):
            self._walk_expression(
                statement.value, held, aliases, function, info, summary
            )
            lock_id = self._lock_expression(
                statement.value, info, function, aliases
            )
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    if lock_id is not None:
                        aliases[target.id] = lock_id
                    else:
                        aliases.pop(target.id, None)
                else:
                    self._walk_expression(
                        target, held, aliases, function, info, summary
                    )
            return
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            self._walk_expression(
                statement.iter, held, aliases, function, info, summary
            )
            iter_lock = self._lock_expression(
                statement.iter, info, function, aliases
            )
            if iter_lock is not None \
                    and self.locks[iter_lock].collection \
                    and isinstance(statement.target, ast.Name):
                # ``for shard_lock in self._shard_locks:`` — the loop
                # variable aliases the composite lock identity.
                aliases[statement.target.id] = iter_lock
            self._walk_body(
                statement.body, held, aliases, function, info, summary
            )
            self._walk_body(
                statement.orelse, held, aliases, function, info, summary
            )
            return
        if isinstance(statement, (ast.If, ast.While)):
            self._walk_expression(
                statement.test, held, aliases, function, info, summary
            )
            self._walk_body(
                statement.body, held, aliases, function, info, summary
            )
            self._walk_body(
                statement.orelse, held, aliases, function, info, summary
            )
            return
        if isinstance(statement, ast.Try):
            self._walk_body(
                statement.body, held, aliases, function, info, summary
            )
            for handler in statement.handlers:
                self._walk_body(
                    handler.body, held, aliases, function, info, summary
                )
            self._walk_body(
                statement.orelse, held, aliases, function, info, summary
            )
            self._walk_body(
                statement.finalbody, held, aliases, function, info, summary
            )
            return
        # Simple statements (Expr, Return, Raise, AugAssign, ...) carry
        # only expressions; walk the whole node.
        self._walk_expression(
            statement, held, aliases, function, info, summary
        )

    def _walk_with(self, statement, held, aliases,
                   function, info, summary) -> None:
        """Handle a ``with`` statement: acquisitions, region capture."""
        acquired = []
        for item in statement.items:
            self._walk_expression(
                item.context_expr, held, aliases, function, info, summary
            )
            lock_id = self._lock_expression(
                item.context_expr, info, function, aliases
            )
            if lock_id is not None:
                if lock_id not in held:
                    # Re-acquiring a held RLock is a no-op: no
                    # acquisition edge, no new region boundary.
                    summary.acquires.append(
                        (item.context_expr, lock_id, frozenset(held))
                    )
                    acquired.append(lock_id)
                if isinstance(item.optional_vars, ast.Name):
                    aliases[item.optional_vars.id] = lock_id
        inner = set(held) | set(acquired)
        start = len(summary.accesses)
        self._walk_body(
            statement.body, inner, aliases, function, info, summary
        )
        span = summary.accesses[start:]
        for lock_id in acquired:
            reads = frozenset(
                attr for _node, attr, write, _held in span if not write
            )
            writes = frozenset(
                attr for _node, attr, write, _held in span if write
            )
            summary.regions.append((statement, lock_id, reads, writes))

    def _walk_expression(self, node, held, aliases,
                         function, info, summary) -> None:
        """Record calls, accesses and acquisitions inside one expression."""
        mutated: set = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._handle_call(
                    sub, held, aliases, function, info, summary, mutated
                )
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                self._handle_attribute(
                    sub, sub in mutated, held, function, info, summary
                )

    def _handle_call(self, call, held, aliases,
                     function, info, summary, mutated) -> None:
        """Classify one call: lock op, blocking op, call edge."""
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr == "acquire":
                lock_id = self._lock_expression(
                    func.value, info, function, aliases
                )
                if lock_id is not None:
                    if lock_id not in held:
                        summary.acquires.append(
                            (call, lock_id, frozenset(held))
                        )
                        held.add(lock_id)
                    return
            elif func.attr == "release":
                lock_id = self._lock_expression(
                    func.value, info, function, aliases
                )
                if lock_id is not None:
                    held.discard(lock_id)
                    return
            elif func.attr == "enter_context" and len(call.args) == 1:
                lock_id = self._lock_expression(
                    call.args[0], info, function, aliases
                )
                if lock_id is not None:
                    if lock_id not in held:
                        summary.acquires.append(
                            (call, lock_id, frozenset(held))
                        )
                        held.add(lock_id)
                    return
            if func.attr in _MUTATOR_METHODS:
                receiver = func.value
                if isinstance(receiver, ast.Attribute):
                    mutated.add(receiver)
        dotted = dotted_name(func)
        resolved_name = (
            self.project.resolve(info, dotted) or dotted
            if dotted else None
        )
        if resolved_name in _BLOCKING_CALLS:
            summary.blocking.append(
                (call, _BLOCKING_CALLS[resolved_name], frozenset(held))
            )
        elif isinstance(func, ast.Attribute) \
                and func.attr in _BLOCKING_METHODS:
            summary.blocking.append(
                (call, f"{dotted or func.attr}()", frozenset(held))
            )
        callee = self.project.resolve_function(
            info, dotted, class_name=function.class_name
        )
        if callee is None and isinstance(func, ast.Attribute):
            callee = self._duck_candidates(func.attr, function, info)
        if callee is not None:
            summary.calls.append((call, callee.qualname, frozenset(held)))

    def _handle_attribute(self, node, is_mutated, held,
                          function, info, summary) -> None:
        """Record tracked-attribute accesses and method references."""
        attr = _self_attribute(node)
        if attr is None or function.class_name is None:
            return
        qualified = f"{info.name}.{function.class_name}.{attr}"
        referenced = self.project.functions.get(qualified)
        if referenced is not None:
            # A ``self.method`` reference (dispatch table, bound
            # callable, property read) executes the method eventually;
            # model it as a call with the locks held here.
            summary.calls.append((node, qualified, frozenset(held)))
            return
        if qualified in self.tracked_attrs:
            write = isinstance(node.ctx, (ast.Store, ast.Del)) or is_mutated
            summary.accesses.append(
                (node, qualified, write, frozenset(held))
            )

    def _lock_expression(self, expression, info, function,
                         aliases) -> str | None:
        """Map an expression to a known lock id, or ``None``."""
        if isinstance(expression, ast.Subscript):
            base = self._lock_expression(
                expression.value, info, function, aliases
            )
            if base is not None and self.locks[base].collection:
                return base
            return None
        if isinstance(expression, ast.Name):
            if expression.id in aliases:
                return aliases[expression.id]
            same_module = f"{info.name}.{expression.id}"
            if same_module in self.locks:
                return same_module
            resolved = self.project.resolve(info, expression.id)
            if resolved in self.locks:
                return resolved
            return None
        if isinstance(expression, ast.Attribute):
            attr = _self_attribute(expression)
            if attr is not None and function.class_name is not None:
                candidate = (
                    f"{info.name}.{function.class_name}.{attr}"
                )
                if candidate in self.locks:
                    return candidate
                return None
            dotted = dotted_name(expression)
            if dotted is not None:
                resolved = self.project.resolve(info, dotted)
                if resolved in self.locks:
                    return resolved
        return None

    # ------------------------------------------------------------------
    # Interprocedural fixpoint
    # ------------------------------------------------------------------

    def _fixpoint(self) -> None:
        """Propagate entry lock-sets and reaching roots from the roots."""
        queue: deque = deque()
        for qualname in sorted(self.roots):
            if qualname not in self.project.functions:
                continue
            root = self.roots[qualname]
            self._entry_must[qualname] = frozenset()
            self._entry_may[qualname] = frozenset()
            self._reach_roots[qualname] = (
                frozenset({qualname})
                if root.kind in _CONCURRENT_KINDS else frozenset()
            )
            queue.append(qualname)
        while queue:
            caller = queue.popleft()
            summary = self._summary(caller)
            if summary is None:
                continue
            for node, callee, local in summary.calls:
                if callee not in self.project.functions:
                    continue
                must = self._entry_must[caller] | local
                may = self._entry_may[caller] | local
                roots = self._reach_roots[caller]
                changed = False
                if callee not in self._entry_must:
                    self._entry_must[callee] = must
                    self._entry_may[callee] = may
                    self._reach_roots[callee] = roots
                    self._parent[callee] = caller
                    changed = True
                else:
                    narrowed = self._entry_must[callee] & must
                    widened = self._entry_may[callee] | may
                    merged = self._reach_roots[callee] | roots
                    if narrowed != self._entry_must[callee]:
                        self._entry_must[callee] = narrowed
                        changed = True
                    if widened != self._entry_may[callee]:
                        self._entry_may[callee] = widened
                        changed = True
                    if merged != self._reach_roots[callee]:
                        self._reach_roots[callee] = merged
                        changed = True
                if changed:
                    queue.append(callee)

    def _path(self, qualname) -> tuple:
        """First-discovery call path from a root to ``qualname``."""
        chain = [qualname]
        seen = {qualname}
        while chain[-1] in self._parent:
            nxt = self._parent[chain[-1]]
            if nxt in seen:
                break
            chain.append(nxt)
            seen.add(nxt)
        return tuple(reversed(chain))

    def _assemble(self) -> None:
        """Combine walker summaries with the fixpoint entry sets."""
        edge_seen: dict = {}
        for qualname in sorted(self._entry_must):
            summary = self._summary(qualname)
            if summary is None:
                continue
            function = self.project.functions[qualname]
            entry_must = self._entry_must[qualname]
            entry_may = self._entry_may[qualname]
            roots = self._reach_roots.get(qualname, frozenset())
            path = self._path(qualname)
            racy = roots and function.name not in ("__init__", "__new__")
            if racy:
                for node, attr_id, write, local in summary.accesses:
                    self.accesses.append(AttributeAccess(
                        attr_id=attr_id, function=qualname, node=node,
                        write=write, must_held=entry_must | local,
                        may_held=entry_may | local, path=path,
                    ))
                    merged = self.attr_roots.setdefault(attr_id, set())
                    merged.update(roots)
                for node, lock_id, reads, writes in summary.regions:
                    self.regions.setdefault(qualname, []).append(
                        LockRegion(
                            function=qualname, lock_id=lock_id,
                            node=node, reads=reads, writes=writes,
                        )
                    )
            for node, description, local in summary.blocking:
                self.blocking_sites.append(BlockingSite(
                    function=qualname, node=node,
                    description=description,
                    held=entry_may | local, path=path,
                ))
            for node, lock_id, local_before in summary.acquires:
                for source in sorted(entry_may | local_before):
                    if source == lock_id:
                        continue
                    key = (source, lock_id)
                    if key not in edge_seen:
                        edge_seen[key] = LockOrderEdge(
                            first=source, second=lock_id,
                            function=qualname, node=node,
                        )
        self.order_edges = [
            edge_seen[key] for key in sorted(edge_seen)
        ]

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------

    def guards(self) -> dict:
        """Majority-inferred guarding lock of every tracked attribute.

        A lock guards an attribute when it is certainly held on a
        strict majority of the attribute's concurrent-reachable
        accesses, with at least two guarded accesses — one guarded
        access is coincidence, not discipline.

        Returns
        -------
        dict of str to tuple
            Attribute id → ``(lock_id, guarded_count, total_count)``
            for attributes with an inferred guard.
        """
        per_attr: dict = {}
        for access in self.accesses:
            per_attr.setdefault(access.attr_id, []).append(access)
        inferred = {}
        for attr_id in sorted(per_attr):
            attr_accesses = per_attr[attr_id]
            counts: dict = {}
            for access in attr_accesses:
                for lock_id in access.must_held:
                    counts[lock_id] = counts.get(lock_id, 0) + 1
            best = None
            for lock_id in sorted(counts):
                count = counts[lock_id]
                if count < 2 or 2 * count <= len(attr_accesses):
                    continue
                if best is None or count > counts[best]:
                    best = lock_id
            if best is not None:
                inferred[attr_id] = (
                    best, counts[best], len(attr_accesses)
                )
        return inferred

    def display(self, lock_id: str) -> str:
        """Short human name of a lock id (``Class.attr`` form)."""
        lock = self.locks.get(lock_id)
        if lock is None:
            return lock_id
        return lock.display + ("[*]" if lock.collection else "")


def _self_attribute(node) -> str | None:
    """Attribute name for ``self.X`` / ``cls.X`` nodes, else ``None``."""
    if isinstance(node, ast.Attribute) and isinstance(
        node.value, ast.Name
    ) and node.value.id in ("self", "cls"):
        return node.attr
    return None

"""Whole-program analysis layer.

Everything the per-module analyzer cannot see lives here: the project
index (symbols, imports, call graph), the raw-record taint engine, the
incremental result cache, the baseline ratchet, and the driver that
``repro lint --project`` runs.
"""

from repro.analysis.project.baseline import Baseline, fingerprint
from repro.analysis.project.cache import (
    DEFAULT_CACHE_PATH,
    AnalysisCache,
    content_hash,
    rules_fingerprint,
)
from repro.analysis.project.index import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    build_index,
    module_name_for_path,
)
from repro.analysis.project.runner import ProjectReport, run_project
from repro.analysis.project.taint import (
    Leak,
    Origin,
    TaintConfig,
    TaintEngine,
    analyze_taint,
    taint_summary,
)

__all__ = [
    "AnalysisCache",
    "Baseline",
    "DEFAULT_CACHE_PATH",
    "FunctionInfo",
    "Leak",
    "ModuleInfo",
    "Origin",
    "ProjectIndex",
    "ProjectReport",
    "TaintConfig",
    "TaintEngine",
    "analyze_taint",
    "build_index",
    "content_hash",
    "fingerprint",
    "module_name_for_path",
    "rules_fingerprint",
    "run_project",
    "taint_summary",
]

"""Whole-program analysis layer.

Everything the per-module analyzer cannot see lives here: the project
index (symbols, imports, call graph), the raw-record taint engine, the
interprocedural lock-set engine, the incremental result cache, the
baseline ratchet, and the driver that ``repro lint --project`` runs.
"""

from repro.analysis.project.baseline import Baseline, fingerprint
from repro.analysis.project.cache import (
    DEFAULT_CACHE_PATH,
    AnalysisCache,
    content_hash,
    rules_fingerprint,
)
from repro.analysis.project.index import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    build_index,
    module_name_for_path,
)
from repro.analysis.project.runner import ProjectReport, run_project
from repro.analysis.project.taint import (
    Leak,
    Origin,
    TaintConfig,
    TaintEngine,
    analyze_taint,
    taint_summary,
)
from repro.analysis.project.locks import (
    AttributeAccess,
    BlockingSite,
    LockInfo,
    LockOrderEdge,
    LockRegion,
    LockSetEngine,
    ThreadRoot,
    lock_sets,
)

__all__ = [
    "AnalysisCache",
    "AttributeAccess",
    "Baseline",
    "BlockingSite",
    "DEFAULT_CACHE_PATH",
    "FunctionInfo",
    "Leak",
    "LockInfo",
    "LockOrderEdge",
    "LockRegion",
    "LockSetEngine",
    "ModuleInfo",
    "Origin",
    "ProjectIndex",
    "ProjectReport",
    "TaintConfig",
    "TaintEngine",
    "ThreadRoot",
    "analyze_taint",
    "build_index",
    "content_hash",
    "fingerprint",
    "lock_sets",
    "module_name_for_path",
    "rules_fingerprint",
    "run_project",
    "taint_summary",
]

"""Whole-program analysis driver.

:func:`run_project` is what ``repro lint --project`` executes: discover
files, consult the incremental cache, run module rules per file and
project rules over the :class:`~repro.analysis.project.index.ProjectIndex`,
filter suppression comments, and apply the baseline ratchet.  The
classic per-module pass (:func:`repro.analysis.walker.analyze_paths`)
stays untouched; this module composes it with the project layer.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.project.baseline import Baseline
from repro.analysis.project.cache import (
    DEFAULT_CACHE_PATH,
    AnalysisCache,
    content_hash,
    rules_fingerprint,
)
from repro.analysis.project.index import ProjectIndex, build_index
from repro.analysis.registry import Rule, get_rules
from repro.analysis.suppressions import is_suppressed, parse_suppressions
from repro.analysis.walker import iter_python_files


@dataclass
class ProjectReport:
    """Outcome of one whole-program analysis run.

    Attributes
    ----------
    findings:
        New (unsuppressed, un-baselined) findings, sorted.
    baselined:
        Count of findings grandfathered by the baseline file.
    suppressed:
        Rule id → count of findings silenced by suppression comments.
    errors:
        Per-file read/parse error strings.
    stats:
        Run statistics: ``total_files``, ``analyzed_files`` (module
        passes executed), ``cached_files`` (module passes replayed)
        and ``cache_hit`` (whole run replayed without parsing).  When
        the run was made with ``with_timings=True`` (the CLI's
        ``--stats``), a ``rule_timings`` mapping of rule id → seconds
        spent is included for cold passes; warm replays omit it, since
        no rule ran.
    rules_run:
        Ids of the rules that ran, sorted.
    """

    findings: list = field(default_factory=list)
    baselined: int = 0
    suppressed: dict = field(default_factory=dict)
    errors: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    rules_run: list = field(default_factory=list)


def _run_fingerprint(rules: Sequence[Rule]) -> str:
    """Cache key component: analyzer sources plus the active rule set."""
    digest = hashlib.sha256(rules_fingerprint().encode())
    digest.update(",".join(sorted(r.rule_id for r in rules)).encode())
    return digest.hexdigest()


def _merge_counts(total: dict, extra: dict) -> None:
    """Accumulate per-rule counts from ``extra`` into ``total``."""
    for rule_id, count in extra.items():
        total[rule_id] = total.get(rule_id, 0) + count


def _split_suppressed(
    findings: Iterable[Finding], suppressions: dict
) -> tuple[list, dict]:
    """Partition findings by the file's suppression comments."""
    kept = []
    silenced: dict = {}
    for finding in findings:
        if is_suppressed(suppressions, finding.line, finding.rule_id):
            silenced[finding.rule_id] = silenced.get(finding.rule_id, 0) + 1
        else:
            kept.append(finding)
    return kept, silenced


def _dependency_paths(index: ProjectIndex) -> dict:
    """Map each analyzed file to its direct project dependency files."""
    graph = index.import_graph()
    deps: dict = {}
    for name, imported in graph.items():
        info = index.modules.get(name)
        if info is None:
            continue
        deps[info.path] = sorted(
            index.modules[dep].path
            for dep in imported
            if dep in index.modules
        )
    return deps


def run_project(
    paths: Iterable,
    rules: Sequence[Rule] | None = None,
    cache_path=DEFAULT_CACHE_PATH,
    use_cache: bool = True,
    baseline_path=None,
    update_baseline: bool = False,
    with_timings: bool = False,
) -> ProjectReport:
    """Run the whole-program analysis over ``paths``.

    Parameters
    ----------
    paths:
        Files or directories to analyze.
    rules:
        Rule instances to run; all registered rules by default.
        Module-scope rules run per file, project-scope rules run once
        over the project index.
    cache_path:
        Incremental cache location (created on first run).
    use_cache:
        ``False`` disables both reading and writing the cache.
    baseline_path:
        Baseline (ratchet) file; ``None`` disables baselining.
    update_baseline:
        Rewrite ``baseline_path`` from the current findings instead of
        ratcheting against it.
    with_timings:
        Collect per-rule wall-clock totals into
        ``report.stats["rule_timings"]`` on cold passes.  Off by
        default so CI JSON artifacts stay byte-diffable run to run.

    Returns
    -------
    ProjectReport

    Raises
    ------
    FileNotFoundError
        If a given path does not exist.
    ValueError
        If the baseline file exists but cannot be parsed.
    """
    if rules is None:
        rules = get_rules()
    module_rules = [rule for rule in rules if rule.scope == "module"]
    project_rules = [rule for rule in rules if rule.scope == "project"]

    report = ProjectReport(rules_run=sorted(r.rule_id for r in rules))
    files = iter_python_files(paths)
    sources: dict = {}
    hashes: dict = {}
    for path in files:
        key = str(path)
        try:
            sources[key] = path.read_text(encoding="utf-8")
            hashes[key] = content_hash(sources[key])
        except OSError as error:
            report.errors.append(f"{path}: {error}")

    fingerprint = _run_fingerprint(rules)
    cache = (
        AnalysisCache.load(cache_path, fingerprint)
        if use_cache else AnalysisCache(fingerprint=fingerprint)
    )

    all_findings: list = []
    warm = use_cache and not report.errors and all(
        cache.module_valid(key, hashes[key])
        and cache.project_valid(key, hashes)
        for key in hashes
    )
    if warm:
        # Fully-warm fast path: every transitive closure is unchanged,
        # so every finding replays without parsing a single file.
        for key in hashes:
            module_findings, project_findings, silenced = cache.replay(key)
            all_findings.extend(module_findings + project_findings)
            _merge_counts(report.suppressed, silenced)
        report.stats = {
            "total_files": len(files),
            "analyzed_files": 0,
            "cached_files": len(hashes),
            "cache_hit": True,
        }
    else:
        all_findings = _analyze_cold(
            report, module_rules, project_rules, sources, hashes, cache,
            with_timings=with_timings,
        )
        if use_cache:
            cache.prune(hashes)
            cache.save(cache_path)

    if update_baseline and baseline_path is not None:
        Baseline.from_findings(all_findings).save(baseline_path)
        report.baselined = len(all_findings)
        report.findings = []
    elif baseline_path is not None:
        fresh, baselined = Baseline.load(baseline_path).partition(
            all_findings
        )
        report.findings = fresh
        report.baselined = baselined
    else:
        report.findings = sorted(all_findings)
    return report


def _analyze_cold(
    report: ProjectReport,
    module_rules: Sequence[Rule],
    project_rules: Sequence[Rule],
    sources: dict,
    hashes: dict,
    cache: AnalysisCache,
    with_timings: bool = False,
) -> list:
    """Parse, index and analyze; replay unchanged module results.

    Parameters
    ----------
    report:
        Report being assembled (stats/suppressed/errors updated here).
    module_rules, project_rules:
        The split rule sets.
    sources, hashes:
        Path → source text and path → content hash for every readable
        file.
    cache:
        Cache to replay from and refresh in place.
    with_timings:
        Accumulate per-rule wall-clock totals into
        ``report.stats["rule_timings"]``.

    Returns
    -------
    list of Finding
        All unsuppressed findings across the analyzed set.
    """
    timings: dict | None = {} if with_timings else None

    def _timed(rule, produce):
        if timings is None:
            return produce()
        started = time.perf_counter()
        found = produce()
        elapsed = time.perf_counter() - started
        timings[rule.rule_id] = timings.get(rule.rule_id, 0.0) + elapsed
        return found

    contexts: dict = {}
    suppressions: dict = {}
    for key, text in sources.items():
        try:
            contexts[key] = ModuleContext.from_source(text, path=key)
        except (SyntaxError, ValueError) as error:
            report.errors.append(f"{key}: {error}")
            continue
        suppressions[key] = parse_suppressions(text)

    index = build_index(contexts.values())
    dependency_paths = _dependency_paths(index)

    module_results: dict = {}
    silenced_by_file: dict = {}
    analyzed = replayed = 0
    for key, context in contexts.items():
        if cache.module_valid(key, hashes[key]):
            cached_module, _, cached_silenced = cache.replay(key)
            module_results[key] = cached_module
            silenced_by_file[key] = dict(cached_silenced)
            replayed += 1
        else:
            raw = []
            for rule in module_rules:
                raw.extend(
                    _timed(rule, lambda: list(rule.check(context)))
                )
            kept, silenced = _split_suppressed(raw, suppressions[key])
            module_results[key] = sorted(kept)
            silenced_by_file[key] = silenced
            analyzed += 1

    project_results: dict = {key: [] for key in contexts}
    for rule in project_rules:
        found = _timed(rule, lambda: list(rule.check_project(index)))
        for finding in found:
            file_suppressions = suppressions.get(finding.path)
            if file_suppressions is not None and is_suppressed(
                file_suppressions, finding.line, finding.rule_id
            ):
                target = silenced_by_file.setdefault(finding.path, {})
                target[finding.rule_id] = target.get(finding.rule_id, 0) + 1
                continue
            project_results.setdefault(finding.path, []).append(finding)

    all_findings: list = []
    for key in contexts:
        all_findings.extend(module_results[key])
        all_findings.extend(sorted(project_results[key]))
        _merge_counts(report.suppressed, silenced_by_file[key])
        cache.store(
            key, hashes[key], dependency_paths.get(key, []),
            module_results[key], sorted(project_results[key]),
            silenced_by_file[key],
        )
    report.stats = {
        "total_files": len(sources),
        "analyzed_files": analyzed,
        "cached_files": replayed,
        "cache_hit": False,
    }
    if timings is not None:
        report.stats["rule_timings"] = {
            rule_id: round(seconds, 6)
            for rule_id, seconds in sorted(timings.items())
        }
    return all_findings

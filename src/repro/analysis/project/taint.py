"""Interprocedural raw-record taint analysis.

The paper's privacy claim is an information-flow property: after
condensation only the ``(Fs, Sc, n)`` group statistics survive, and
anonymized output is drawn from them — never from raw records (§2.1).
This engine checks that property across function and module boundaries
with a classic taint design:

* **Sources** mark values as raw records: calls to dataset
  loaders/generators (``repro.datasets`` ``load_*``/``make_*``/
  ``fetch_*``), raw-record readers (``repro.io`` ``read_*``), and the
  record-named ndarray parameters of condensation entry points in the
  privacy-critical packages (``repro/core``, ``repro/stream``,
  ``repro/parallel``, ``repro/durability``).
* **Propagation** is intraprocedural plus call summaries: assignments,
  tuple unpacking, subscripts/slices, wrapping calls
  (``np.asarray``/``.copy()``/stacking), container literals,
  comprehensions, f-strings and arithmetic keep taint; aggregations
  (``len``, ``sum``, ``.mean()``, matrix products, comparisons) erase
  it — deriving statistics *is* the paper's sanctioned operation.
  Unpacking one value into several names narrows taint to record-named
  targets (task tuples carry ``k``/``strategy`` scalars next to the
  records; the tuple's element structure is not tracked).
  Calls into indexed functions use per-function summaries reached by a
  monotone fixpoint over the call graph, so taint follows values
  through returns and into callee parameters.
* **Sinks** are the places record data would escape: serialization and
  file writes, telemetry payloads, exporter calls, and
  ``print``/logging/``__repr__`` formatting.

The engine reports each leak with the full source→sink hop chain so a
finding reads as a path, not a point.  Everything is a deliberate
over/under-approximation of runtime behavior — see the module-level
discussion in ``docs/static_analysis.md`` for the escape hatches
(unresolvable calls drop taint; attribute stores are PRIV-001's job).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.astutils import dotted_name
from repro.analysis.project.index import FunctionInfo, ProjectIndex

#: Parameter / value names that denote raw record batches by repo
#: convention (mirrors PRIV-001's vocabulary).
RECORD_PARAM_NAMES = frozenset({
    "data", "records", "X", "rows", "batch", "samples", "points",
    "members", "observations", "database",
})

#: Attribute reads that return metadata, not record content.
_METADATA_ATTRS = frozenset({
    "shape", "ndim", "dtype", "size", "nbytes", "itemsize", "count",
    "n_groups", "n_features", "n_records", "name", "k", "columns",
})

#: Calls that wrap or restack records without reducing them.
_WRAPPING_CALLS = frozenset({
    "asarray", "array", "copy", "atleast_2d", "vstack", "hstack",
    "stack", "concatenate", "column_stack", "ascontiguousarray",
    "asfarray", "require", "list", "tuple", "sorted", "reversed",
    "str", "repr", "format", "deepcopy",
})

#: Methods that pass their receiver's data through unchanged.
_PASSTHROUGH_METHODS = frozenset({
    "copy", "astype", "reshape", "view", "tolist", "ravel", "flatten",
    "transpose", "squeeze", "round", "clip", "take", "item",
})

#: Calls and methods that aggregate records into scalars/statistics.
_REDUCER_CALLS = frozenset({
    "len", "int", "float", "bool", "sum", "min", "max", "abs", "hash",
    "any", "all", "id", "isinstance", "range", "enumerate", "zip",
})
_REDUCER_METHODS = frozenset({
    "sum", "mean", "std", "var", "min", "max", "dot", "trace", "prod",
    "argmin", "argmax", "argsort", "nonzero", "count", "index",
})

_SERIALIZER_HEADS = frozenset({
    "pickle", "cPickle", "dill", "joblib", "shelve", "marshal", "json",
    "yaml", "msgpack",
})
_NUMPY_SAVERS = frozenset({"save", "savez", "savez_compressed", "savetxt"})
_WRITE_METHODS = frozenset({
    "write", "writelines", "write_text", "write_bytes", "writerow",
    "writerows", "tofile", "to_csv", "dump", "dumps",
})
_LOG_METHODS = frozenset({
    "debug", "info", "warning", "error", "critical", "exception", "log",
})
_TELEMETRY_FUNCTIONS = frozenset({
    "counter_inc", "gauge_set", "histogram_observe", "span",
})
_TELEMETRY_RECEIVER_HINTS = (
    "telemetry", "span", "counter", "gauge", "histogram", "metric",
    "pipeline",
)

#: Longest rendered source→sink chain; longer paths are elided in the
#: middle so reports stay readable.
_MAX_TRACE_HOPS = 10


@dataclass(frozen=True, order=True)
class Origin:
    """Identity of one taint source.

    Attributes
    ----------
    kind:
        ``"source"`` (a loader/generator call) or ``"param"`` (a
        record-named entry-point parameter).
    qualname:
        Qualified name of the source function or the parameter's owner.
    detail:
        Parameter name for ``"param"`` origins, empty otherwise.
    location:
        ``path:line`` where the taint was born.
    """

    kind: str
    qualname: str
    detail: str
    location: str


@dataclass(frozen=True)
class Leak:
    """One tainted value reaching one sink.

    Attributes
    ----------
    function:
        Qualname of the function containing the sink.
    module:
        Dotted module name containing the sink.
    path:
        File path of the sink.
    line, column:
        Sink location.
    sink:
        Human-readable sink description, e.g. ``"np.savetxt() write"``.
    origin:
        The taint source that reached the sink.
    trace:
        Ordered hop descriptions from source to sink.
    """

    function: str
    module: str
    path: str
    line: int
    column: int
    sink: str
    origin: Origin
    trace: tuple


class TaintConfig:
    """Source / sink / sanction policy of the taint engine.

    The defaults encode the repository's trust model; tests and other
    projects can subclass to re-point the policy.
    """

    #: Module prefixes whose sinks legitimately handle raw records
    #: (the trusted side of the paper's deployment model).  The serve
    #: load generator is the trusted *client* of the HTTP service: it
    #: synthesizes records and ships them raw to ``/ingest``, upstream
    #: of condensation, exactly like a benchmark driver.
    sanctioned_prefixes = ("repro.datasets", "repro.io",
                          "repro.serve.loadgen", "tests",
                          "benchmarks", "examples", "conftest")

    def is_source_function(self, qualname: str) -> bool:
        """Whether a qualified function name denotes a record source.

        Parameters
        ----------
        qualname:
            Fully qualified (or best-effort resolved) dotted name.

        Returns
        -------
        bool
        """
        module, _, name = qualname.rpartition(".")
        if module.startswith("repro.datasets") and name.startswith(
            ("load_", "make_", "fetch_")
        ):
            return True
        if module.startswith("repro.io") and name.startswith("read_"):
            return True
        return False

    def is_entry_param(self, function: FunctionInfo, context) -> list:
        """Record-named parameters that seed taint for ``function``.

        Parameters
        ----------
        function:
            Candidate entry point.
        context:
            The :class:`ModuleContext` of the defining module.

        Returns
        -------
        list of str
            Parameter names to taint; empty when the function is not an
            entry point.
        """
        if not context.is_privacy_critical or context.is_test_module:
            return []
        return [
            param for param in function.params
            if param in RECORD_PARAM_NAMES
        ]

    def is_sanctioned_module(self, module_name: str, context) -> bool:
        """Whether sinks in this module may handle raw records.

        Parameters
        ----------
        module_name:
            Dotted module name.
        context:
            The module's :class:`ModuleContext`.

        Returns
        -------
        bool
        """
        if context.is_test_module:
            return True
        return module_name.startswith(self.sanctioned_prefixes)


def _elide(trace: tuple) -> tuple:
    """Cap a hop chain at ``_MAX_TRACE_HOPS``, eliding the middle."""
    if len(trace) <= _MAX_TRACE_HOPS:
        return trace
    keep = _MAX_TRACE_HOPS // 2
    return trace[:keep] + ("…",) + trace[-keep:]


class TaintEngine:
    """Whole-program taint propagation over a :class:`ProjectIndex`.

    Parameters
    ----------
    index:
        The project index to analyze.
    config:
        Source/sink policy; the repo defaults when ``None``.
    """

    def __init__(self, index: ProjectIndex, config: TaintConfig | None = None):
        self.index = index
        self.config = config or TaintConfig()
        # function qualname -> param name -> set of Origin
        self._param_in: dict = {}
        # function qualname -> set of Origin flowing to its return
        self._returns: dict = {}
        # (function qualname, Origin) -> shortest hop chain
        self._chains: dict = {}
        self._leaks: dict = {}

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def run(self) -> list:
        """Run the fixpoint and collect leaks.

        Returns
        -------
        list of Leak
            Sorted leaks (by path, line, column, sink).
        """
        self._seed_entry_params()
        functions = sorted(self.index.functions)
        # Monotone state (origin sets only grow), so iterate to a
        # global fixpoint; the bound is a safety net, not a limit hit
        # in practice.
        for _ in range(32):
            changed = False
            for qualname in functions:
                if self._analyze(qualname):
                    changed = True
            if not changed:
                break
        # One final pass collects sinks against the stable state.
        for qualname in functions:
            self._analyze(qualname, collect=True)
        return sorted(
            self._leaks.values(),
            key=lambda leak: (leak.path, leak.line, leak.column,
                              leak.sink, leak.origin),
        )

    def _seed_entry_params(self) -> None:
        """Taint record-named params of condensation entry points."""
        for qualname, function in self.index.functions.items():
            info = self.index.modules[function.module]
            for param in self.config.is_entry_param(function, info.context):
                origin = Origin(
                    kind="param",
                    qualname=qualname,
                    detail=param,
                    location=f"{info.path}:{function.node.lineno}",
                )
                self._param_in.setdefault(qualname, {}).setdefault(
                    param, set()
                ).add(origin)
                self._chains.setdefault((qualname, origin), (
                    f"raw-record parameter {param!r} of {qualname}() "
                    f"({origin.location})",
                ))

    def _analyze(self, qualname: str, collect: bool = False) -> bool:
        """Propagate taint through one function body.

        Returns ``True`` when any global state (callee params, return
        origins) changed.
        """
        function = self.index.functions[qualname]
        analyzer = _FunctionAnalyzer(self, function, collect=collect)
        return analyzer.run()

    # ------------------------------------------------------------------
    # Shared state updates (called by the per-function analyzer)
    # ------------------------------------------------------------------

    def chain(self, qualname: str, origin: Origin) -> tuple:
        """Shortest known hop chain for ``origin`` inside ``qualname``.

        Parameters
        ----------
        qualname:
            Function the origin is observed in.
        origin:
            The taint origin.

        Returns
        -------
        tuple of str
        """
        return self._chains.get((qualname, origin), (origin.location,))

    def _offer_chain(self, qualname, origin, chain) -> None:
        """Keep the shortest (then lexicographically first) chain."""
        key = (qualname, origin)
        current = self._chains.get(key)
        if current is None or (len(chain), chain) < (len(current), current):
            self._chains[key] = chain

    def propagate_to_param(self, caller, callee, param, origins, site
                           ) -> bool:
        """Flow origins from a call site into a callee parameter.

        Parameters
        ----------
        caller:
            Calling function qualname.
        callee:
            Callee :class:`FunctionInfo`.
        param:
            Callee parameter name receiving the value.
        origins:
            Origins of the argument value.
        site:
            ``path:line`` of the call.

        Returns
        -------
        bool
            Whether the callee's incoming state grew.
        """
        if not origins:
            return False
        bucket = self._param_in.setdefault(callee.qualname, {}).setdefault(
            param, set()
        )
        changed = False
        for origin in origins:
            if origin not in bucket:
                bucket.add(origin)
                changed = True
            self._offer_chain(
                callee.qualname, origin,
                self.chain(caller, origin)
                + (f"passed to {callee.qualname}({param}=…) at {site}",),
            )
        return changed

    def record_return(self, qualname, origins) -> bool:
        """Record origins flowing to a function's return value.

        Parameters
        ----------
        qualname:
            The returning function.
        origins:
            Origins of the returned expression.

        Returns
        -------
        bool
            Whether the return set grew.
        """
        bucket = self._returns.setdefault(qualname, set())
        before = len(bucket)
        bucket |= origins
        return len(bucket) != before

    def returns_of(self, qualname: str) -> set:
        """Origins known to flow out of ``qualname``'s return.

        Parameters
        ----------
        qualname:
            Function to query.

        Returns
        -------
        set of Origin
        """
        return self._returns.get(qualname, set())

    def incoming(self, qualname: str) -> dict:
        """Per-parameter incoming origins of ``qualname``.

        Parameters
        ----------
        qualname:
            Function to query.

        Returns
        -------
        dict of str to set of Origin
        """
        return self._param_in.get(qualname, {})

    def record_leak(self, function, node, sink, origins) -> None:
        """Record a sink hit, keeping one shortest-path leak per sink.

        Parameters
        ----------
        function:
            :class:`FunctionInfo` containing the sink.
        node:
            Sink AST node.
        sink:
            Sink description.
        origins:
            Origins reaching the sink.
        """
        info = self.index.modules[function.module]
        if self.config.is_sanctioned_module(info.name, info.context):
            return
        for origin in origins:
            trace = _elide(
                self.chain(function.qualname, origin)
                + (f"reaches {sink} at {info.path}:{node.lineno}",)
            )
            key = (info.path, node.lineno, node.col_offset, sink)
            leak = Leak(
                function=function.qualname,
                module=info.name,
                path=info.path,
                line=node.lineno,
                column=node.col_offset,
                sink=sink,
                origin=origin,
                trace=trace,
            )
            current = self._leaks.get(key)
            if current is None or (
                (len(leak.trace), leak.trace)
                < (len(current.trace), current.trace)
            ):
                self._leaks[key] = leak


class _FunctionAnalyzer:
    """Intraprocedural pass over one function body."""

    def __init__(self, engine: TaintEngine, function: FunctionInfo,
                 collect: bool):
        self.engine = engine
        self.function = function
        self.module = engine.index.modules[function.module]
        self.collect = collect
        self.env: dict = {}
        self.changed = False

    def run(self) -> bool:
        """Analyze the body; return whether global state changed."""
        for param, origins in self.engine.incoming(
            self.function.qualname
        ).items():
            self.env[param] = set(origins)
        body = list(self.function.node.body)
        # Two passes approximate loop-carried flows without a full
        # intraprocedural fixpoint.
        for _ in range(2):
            for statement in body:
                self._visit(statement)
        return self.changed

    # -- statements ----------------------------------------------------

    def _visit(self, node) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are out of the approximation
        if isinstance(node, ast.Return):
            origins = self._eval(node.value) if node.value else set()
            if origins:
                if self.engine.record_return(
                    self.function.qualname, origins
                ):
                    self.changed = True
                if self.function.name in ("__repr__", "__str__",
                                          "__format__"):
                    self._leak(node, "repr/str formatting output",
                               origins)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            origins = self._eval(value) if value is not None else set()
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                self._bind(target, origins)
            return
        if isinstance(node, ast.For):
            origins = self._eval(node.iter)
            self._bind(node.target, origins)
            for child in node.body + node.orelse:
                self._visit(child)
            return
        if isinstance(node, (ast.While, ast.If)):
            self._eval(node.test)
            for child in node.body + node.orelse:
                self._visit(child)
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                origins = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, origins)
            for child in node.body:
                self._visit(child)
            return
        if isinstance(node, ast.Try):
            for child in (node.body + node.orelse + node.finalbody):
                self._visit(child)
            for handler in node.handlers:
                for child in handler.body:
                    self._visit(child)
            return
        if isinstance(node, ast.Expr):
            self._eval(node.value)
            return
        if isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return
        # Remaining statements (pass, import, global, ...) carry no flow.

    def _bind(self, target, origins) -> None:
        """Bind origins to an assignment target (names only)."""
        if isinstance(target, ast.Name):
            if origins:
                self.env[target.id] = (
                    self.env.get(target.id, set()) | origins
                )
            elif target.id not in self.env:
                self.env[target.id] = set()
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            # Unpacking one value into several names loses the tuple's
            # structure, so taint is narrowed to record-named targets:
            # shard task tuples carry scalars (k, strategy, seed) next
            # to the records, and ``data, header = read_records(...)``
            # must not taint the header.  A record smuggled into a
            # non-record name here is the documented escape hatch.
            narrow = len(target.elts) > 1
            for element in target.elts:
                leaf = element
                while isinstance(leaf, ast.Starred):
                    leaf = leaf.value
                if (
                    narrow
                    and isinstance(leaf, ast.Name)
                    and leaf.id not in RECORD_PARAM_NAMES
                ):
                    self._bind(element, set())
                else:
                    self._bind(element, origins)
            return
        if isinstance(target, ast.Starred):
            self._bind(target.value, origins)
        # Attribute / subscript stores are PRIV-001's territory.

    # -- expressions ---------------------------------------------------

    def _eval(self, node) -> set:
        """Origins of one expression (empty set = untainted)."""
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value)
            if node.attr in _METADATA_ATTRS:
                return set()
            return base
        if isinstance(node, ast.Subscript):
            self._eval(node.slice)
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            left, right = self._eval(node.left), self._eval(node.right)
            if isinstance(node.op, ast.MatMult):
                # Matrix products contract the record axis — they are
                # the (Sc) aggregation itself, not a copy of records.
                return set()
            return left | right
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, (ast.BoolOp,)):
            for value in node.values:
                self._eval(value)
            return set()
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return set()
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            origins = set()
            for element in node.elts:
                origins |= self._eval(element)
            return origins
        if isinstance(node, ast.Dict):
            origins = set()
            for key in node.keys:
                if key is not None:
                    origins |= self._eval(key)
            for value in node.values:
                origins |= self._eval(value)
            return origins
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.JoinedStr):
            origins = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    origins |= self._eval(value.value)
            return origins
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            origins = self._eval(node.value)
            self._bind(node.target, origins)
            return origins
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part)
            return set()
        return set()

    def _eval_comprehension(self, node) -> set:
        """Evaluate a comprehension, binding its loop targets."""
        saved = dict(self.env)
        for generator in node.generators:
            origins = self._eval(generator.iter)
            self._bind(generator.target, origins)
            for condition in generator.ifs:
                self._eval(condition)
        if isinstance(node, ast.DictComp):
            result = self._eval(node.key) | self._eval(node.value)
        else:
            result = self._eval(node.elt)
        self.env = saved
        return result

    # -- calls ---------------------------------------------------------

    def _argument_origins(self, node) -> list:
        """Origins of each positional+keyword argument, in order."""
        origins = []
        for argument in node.args:
            origins.append((None, self._eval(argument)))
        for keyword in node.keywords:
            origins.append((keyword.arg, self._eval(keyword.value)))
        return origins

    def _eval_call(self, node) -> set:
        name = dotted_name(node.func)
        arguments = self._argument_origins(node)
        any_arg = set().union(*(origins for _, origins in arguments)) \
            if arguments else set()
        receiver = set()
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value)

        self._check_sink(node, name, any_arg | (
            receiver if isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_METHODS else set()
        ))

        resolved = None
        qualified = None
        if name is not None:
            resolved = self.engine.index.resolve_function(
                self.module, name, class_name=self.function.class_name
            )
            qualified = self.engine.index.resolve(self.module, name)

        # Source calls are born tainted.
        source_qualname = None
        if resolved is not None and self.engine.config.is_source_function(
            resolved.qualname
        ):
            source_qualname = resolved.qualname
        elif qualified is not None and self.engine.config.is_source_function(
            qualified
        ):
            source_qualname = qualified
        if source_qualname is not None:
            location = f"{self.module.path}:{node.lineno}"
            origin = Origin(
                kind="source", qualname=source_qualname, detail="",
                location=location,
            )
            self.engine._offer_chain(
                self.function.qualname, origin,
                (f"raw records from {source_qualname}() at {location}",),
            )
            return {origin}

        if resolved is not None:
            self._propagate_call(node, resolved, arguments)
            returned = self.engine.returns_of(resolved.qualname)
            if returned:
                site = f"{self.module.path}:{node.lineno}"
                for origin in returned:
                    self.engine._offer_chain(
                        self.function.qualname, origin,
                        self.engine.chain(resolved.qualname, origin)
                        + (f"returned by {resolved.qualname}() "
                           f"at {site}",),
                    )
            return set(returned)

        # Unresolved calls: conservative name-based classification.
        leaf = name.rsplit(".", 1)[-1] if name else None
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _REDUCER_METHODS:
                return set()
            if node.func.attr in _PASSTHROUGH_METHODS:
                return receiver
            if node.func.attr in _WRAPPING_CALLS:
                return any_arg
            return set()
        if leaf in _REDUCER_CALLS:
            return set()
        if leaf in _WRAPPING_CALLS:
            return any_arg
        return set()

    def _propagate_call(self, node, resolved, arguments) -> None:
        """Map call-site origins onto the callee's parameters."""
        params = list(resolved.params)
        offset = 0
        called_name = dotted_name(node.func) or ""
        if (
            params
            and params[0] in ("self", "cls")
            and "." in called_name
        ):
            # ``obj.method(x)`` / ``Class.classmethod(x)``: the first
            # declared parameter is bound to the receiver.
            offset = 1
        position = 0
        site = f"{self.module.path}:{node.lineno}"
        for keyword_name, origins in arguments:
            if keyword_name is None:
                index = position + offset
                position += 1
                if index >= len(params):
                    continue
                param = params[index]
            else:
                if keyword_name not in params:
                    continue
                param = keyword_name
            if self.engine.propagate_to_param(
                self.function.qualname, resolved, param, origins, site
            ):
                self.changed = True

    # -- sinks ---------------------------------------------------------

    def _leak(self, node, sink, origins) -> None:
        if self.collect and origins:
            self.engine.record_leak(self.function, node, sink, origins)

    def _check_sink(self, node, name, origins) -> None:
        """Classify one call as a sink and record tainted hits."""
        if not origins:
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            self._leak(node, "print() output", origins)
            return
        if isinstance(func, ast.Attribute):
            receiver_name = dotted_name(func.value) or ""
            if func.attr in _WRITE_METHODS:
                self._leak(
                    node, f".{func.attr}() serialization/write", origins
                )
                return
            if (
                func.attr in _LOG_METHODS
                and "log" in receiver_name.rsplit(".", 1)[-1].lower()
            ):
                self._leak(node, f"log call .{func.attr}()", origins)
                return
            if func.attr == "set_attribute" or (
                func.attr in ("inc", "set", "observe")
                and any(
                    hint in receiver_name.rsplit(".", 1)[-1].lower()
                    for hint in _TELEMETRY_RECEIVER_HINTS
                )
            ):
                self._leak(node, f"telemetry payload .{func.attr}()",
                           origins)
                return
        if name is None:
            return
        parts = name.split(".")
        if parts[0] in _SERIALIZER_HEADS and len(parts) > 1:
            self._leak(node, f"{name}() serialization", origins)
            return
        if (
            len(parts) == 2
            and parts[0] in ("np", "numpy")
            and parts[1] in _NUMPY_SAVERS
        ):
            self._leak(node, f"{name}() write", origins)
            return
        qualified = self.engine.index.resolve(self.module, name)
        if qualified is None:
            if parts[-1] in _TELEMETRY_FUNCTIONS:
                self._leak(node, f"telemetry payload {name}()", origins)
            return
        if qualified.startswith("repro.telemetry"):
            self._leak(node, f"telemetry payload {name}()", origins)
            return
        leaf = qualified.rsplit(".", 1)[-1]
        if qualified.startswith("repro.io.") and leaf.startswith(
            ("write_", "save_")
        ):
            self._leak(node, f"exporter call {name}()", origins)


def analyze_taint(
    index: ProjectIndex, config: TaintConfig | None = None
) -> list:
    """Run the taint engine over an indexed project.

    Parameters
    ----------
    index:
        The project index.
    config:
        Optional policy override.

    Returns
    -------
    list of Leak
        Sorted source→sink leaks.
    """
    return TaintEngine(index, config).run()


def taint_summary(leaks: Iterable[Leak]) -> dict:
    """Aggregate leaks per sink module for quick reporting.

    Parameters
    ----------
    leaks:
        Leaks from :func:`analyze_taint`.

    Returns
    -------
    dict of str to int
        Leak counts keyed by sink module name.
    """
    counts: dict = {}
    for leak in leaks:
        counts[leak.module] = counts.get(leak.module, 0) + 1
    return counts

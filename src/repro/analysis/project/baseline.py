"""Finding baseline — the CI ratchet.

Whole-program rules land on a codebase with history: pre-existing
findings should not block CI the day the rule ships, but no *new* ones
may join them.  The baseline file records a count per finding
fingerprint; at report time each fingerprint's first ``count`` findings
are grandfathered and everything beyond is new.  Running ``repro lint
--update-baseline`` rewrites the file from the current findings, which
can only shrink the debt (or intentionally re-grandfather after a
refactor — the diff makes that loud).

Fingerprints deliberately exclude line numbers (and rule messages are
written without them; any ``:<line>`` that sneaks in is collapsed), so
unrelated edits that shift code do not churn the baseline.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding

#: On-disk format version.
BASELINE_VERSION = 1

_LINE_REF = re.compile(r":\d+")


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding, independent of line numbers.

    Parameters
    ----------
    finding:
        The finding to fingerprint.

    Returns
    -------
    str
        ``"path|rule_id|normalized-message"``.
    """
    message = _LINE_REF.sub(":*", finding.message)
    return f"{finding.path}|{finding.rule_id}|{message}"


@dataclass
class Baseline:
    """Grandfathered finding counts keyed by fingerprint.

    Attributes
    ----------
    counts:
        Fingerprint → number of tolerated findings.
    """

    counts: dict = field(default_factory=dict)

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline.

        Parameters
        ----------
        path:
            Baseline file path.

        Returns
        -------
        Baseline

        Raises
        ------
        ValueError
            If the file exists but is not a valid baseline document.
        """
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            counts = {
                str(key): int(value)
                for key, value in document["fingerprints"].items()
            }
        except (json.JSONDecodeError, KeyError, TypeError,
                AttributeError) as error:
            raise ValueError(f"invalid baseline file {path}: {error}")
        return cls(counts=counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """Build a baseline grandfathering every given finding.

        Parameters
        ----------
        findings:
            The findings to tolerate from now on.

        Returns
        -------
        Baseline
        """
        counts: dict = {}
        for finding in findings:
            key = fingerprint(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)

    def save(self, path) -> None:
        """Write the baseline file (sorted, diff-friendly).

        Parameters
        ----------
        path:
            Destination path.
        """
        document = {
            "version": BASELINE_VERSION,
            "fingerprints": dict(sorted(self.counts.items())),
        }
        Path(path).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )

    def partition(
        self, findings: Sequence[Finding]
    ) -> tuple[list, int]:
        """Split findings into new ones and a grandfathered count.

        Within one fingerprint, findings are tolerated in sorted order
        until the baselined count is exhausted; the rest are new.

        Parameters
        ----------
        findings:
            Current findings.

        Returns
        -------
        tuple of (list of Finding, int)
            New findings (sorted) and how many were baselined.
        """
        remaining = dict(self.counts)
        fresh = []
        baselined = 0
        for finding in sorted(findings):
            key = fingerprint(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined += 1
            else:
                fresh.append(finding)
        return fresh, baselined

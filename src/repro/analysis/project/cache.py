"""Incremental result cache for the whole-program pass.

The project pass costs one parse of every file plus a taint fixpoint;
on a warm tree that is pure waste.  The cache stores, per analyzed
file: its content hash, its direct project-internal dependency paths
(from the import graph), and the findings that landed in it — split
into module-rule findings (valid whenever the file's own hash matches)
and project-rule findings (valid only when every file in the
*transitive* import closure is unchanged, because taint flows across
edges).

A run where every file's transitive closure is unchanged replays all
findings without parsing a single file.  Any change falls back to a
full project pass — the taint fixpoint is global — but unchanged
files' module findings still replay from cache.

The whole cache is invalidated when the analyzer itself changes: the
key includes a fingerprint over the ``repro.analysis`` sources, so
editing a rule never serves stale results.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.findings import Finding

#: On-disk format version; bump on incompatible layout changes.
CACHE_VERSION = 1

#: Default cache location, relative to the invocation directory.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def content_hash(text: str) -> str:
    """SHA-256 of a file's text, the cache's change detector.

    Parameters
    ----------
    text:
        File content.

    Returns
    -------
    str
        Hex digest.
    """
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def rules_fingerprint() -> str:
    """Digest of the analyzer's own sources.

    Any edit to ``repro.analysis`` (new rule, changed policy) changes
    the fingerprint and drops the whole cache — stale findings are
    worse than a cold run.

    Returns
    -------
    str
        Hex digest over every ``.py`` file in the analysis package.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()


class AnalysisCache:
    """Per-file analysis results keyed on content hashes.

    Parameters
    ----------
    fingerprint:
        Analyzer fingerprint the entries were produced under.
    files:
        Path → entry mapping (see :meth:`store`).
    """

    def __init__(self, fingerprint: str = "", files: dict | None = None):
        self.fingerprint = fingerprint
        self.files = files or {}

    @classmethod
    def load(cls, path, fingerprint: str) -> "AnalysisCache":
        """Read a cache file, discarding incompatible content.

        A missing, corrupt, version-mismatched or fingerprint-mismatched
        file yields an empty cache — the cache is an optimization and
        must never be a correctness hazard.

        Parameters
        ----------
        path:
            Cache file path.
        fingerprint:
            Current analyzer fingerprint (see :func:`rules_fingerprint`).

        Returns
        -------
        AnalysisCache
        """
        path = Path(path)
        if not path.exists():
            return cls(fingerprint=fingerprint)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            if (
                document.get("version") != CACHE_VERSION
                or document.get("fingerprint") != fingerprint
            ):
                return cls(fingerprint=fingerprint)
            files = document["files"]
        except (json.JSONDecodeError, KeyError, TypeError, OSError):
            return cls(fingerprint=fingerprint)
        return cls(fingerprint=fingerprint, files=files)

    def save(self, path) -> None:
        """Write the cache file.

        Parameters
        ----------
        path:
            Destination path.
        """
        document = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "files": self.files,
        }
        Path(path).write_text(
            json.dumps(document, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def store(
        self, path: str, file_hash: str, deps: list,
        module_findings: list, project_findings: list,
        suppressed: dict,
    ) -> None:
        """Record one file's results.

        Parameters
        ----------
        path:
            File path (display form, the cache key).
        file_hash:
            The file's :func:`content_hash`.
        deps:
            Paths of directly imported project files.
        module_findings:
            Unsuppressed module-rule findings in the file.
        project_findings:
            Unsuppressed project-rule findings attributed to the file.
        suppressed:
            Rule id → count of findings silenced by suppression
            comments in this file.
        """
        self.files[path] = {
            "hash": file_hash,
            "deps": sorted(deps),
            "module_findings": [f.to_dict() for f in module_findings],
            "project_findings": [f.to_dict() for f in project_findings],
            "suppressed": dict(sorted(suppressed.items())),
        }

    def module_valid(self, path: str, file_hash: str) -> bool:
        """Whether a file's module-rule findings can be replayed.

        Parameters
        ----------
        path:
            File path.
        file_hash:
            Current content hash.

        Returns
        -------
        bool
        """
        entry = self.files.get(path)
        return entry is not None and entry["hash"] == file_hash

    def project_valid(self, path: str, hashes: dict) -> bool:
        """Whether a file's project-rule findings can be replayed.

        Valid only when the file *and its transitive import closure*
        are unchanged — taint crosses import edges, so a changed
        dependency invalidates every dependent.

        Parameters
        ----------
        path:
            File path.
        hashes:
            Current path → content hash mapping for every file in the
            analyzed set.

        Returns
        -------
        bool
        """
        seen = set()
        frontier = [path]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            entry = self.files.get(current)
            if entry is None or entry["hash"] != hashes.get(current):
                return False
            frontier.extend(entry["deps"])
        return True

    def replay(self, path: str) -> tuple[list, list, dict]:
        """Rebuild a file's cached findings.

        Parameters
        ----------
        path:
            File path previously passed to :meth:`store`.

        Returns
        -------
        tuple of (list, list, dict)
            Module findings, project findings and the suppressed-count
            mapping.
        """
        entry = self.files[path]
        module_findings = [
            Finding.from_dict(d) for d in entry["module_findings"]
        ]
        project_findings = [
            Finding.from_dict(d) for d in entry["project_findings"]
        ]
        return module_findings, project_findings, dict(entry["suppressed"])

    def prune(self, keep) -> None:
        """Drop entries for files no longer in the analyzed set.

        Parameters
        ----------
        keep:
            Paths that remain valid cache keys.
        """
        keep = set(keep)
        for path in list(self.files):
            if path not in keep:
                del self.files[path]

"""Text and JSON rendering of analysis results.

The JSON schema is stable (``schema_version``) so CI and editor
integrations can consume it.  Version 2 adds column offsets (always
present in findings), per-rule suppression counts, the baselined
(grandfathered) count, source→sink traces, and zero-filled per-rule
totals whenever the run's rule set is known — so two CI artifacts diff
cleanly even when a rule goes quiet::

    {
      "schema_version": 2,
      "summary": {"files_with_findings": 1, "total": 2,
                  "by_rule": {"PRIV-003": 2, "RNG-001": 0},
                  "suppressed": {"PRIV-001": 1},
                  "suppressed_total": 1,
                  "baselined": 4},
      "stats": {"total_files": 106, "analyzed_files": 3,
                "cached_files": 103, "cache_hit": false},
      "findings": [{"path": ..., "line": ..., "column": ...,
                    "rule_id": ..., "message": ..., "trace": [...]}],
      "errors": []
    }

``stats`` appears only for project runs; ``suppressed`` counts only
findings silenced by ``# repro-lint: disable`` comments.

:func:`render_sarif` emits the same information as SARIF v2.1.0 for
GitHub code scanning (``repro lint --project --format sarif``): one
run, driver ``repro-lint``, one result per finding with the trace
folded into the message, and the baseline fingerprint carried as
``partialFingerprints`` so code-scanning alert identity matches the
ratchet's.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Mapping, Sequence

from repro.analysis.findings import Finding
from repro.analysis.project.baseline import fingerprint

JSON_SCHEMA_VERSION = 2

#: SARIF format version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"

_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _summary_extras(baselined: int, suppressed: Mapping | None) -> str:
    """Render the trailing baselined/suppressed note for text reports."""
    notes = []
    if baselined:
        notes.append(f"{baselined} baselined")
    total_suppressed = sum((suppressed or {}).values())
    if total_suppressed:
        notes.append(f"{total_suppressed} suppressed")
    return f" ({', '.join(notes)})" if notes else ""


def render_text(
    findings: Sequence[Finding],
    errors: Sequence[str] = (),
    suppressed: Mapping | None = None,
    baselined: int = 0,
    rules_run: Sequence[str] | None = None,
    stats: Mapping | None = None,
) -> str:
    """Render findings as human-readable lines plus a summary.

    Parameters
    ----------
    findings:
        Findings to render, already sorted.
    errors:
        File-level read/parse errors.
    suppressed:
        Rule id → count of comment-suppressed findings.
    baselined:
        Findings grandfathered by the baseline ratchet.
    rules_run:
        Ids of the rules that ran (unused in text output; accepted for
        signature parity with :func:`render_json`).
    stats:
        Project-run statistics (cache behavior), rendered when given.

    Returns
    -------
    str
        Multi-line report; ends with a one-line summary.
    """
    lines = [finding.format() for finding in findings]
    lines += [f"error: {error}" for error in errors]
    by_rule = Counter(finding.rule_id for finding in findings)
    extras = _summary_extras(baselined, suppressed)
    if findings or errors:
        breakdown = ", ".join(
            f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(findings)} finding(s), {len(errors)} error(s)"
            + (f"  [{breakdown}]" if breakdown else "")
            + extras
        )
    else:
        lines.append(f"0 findings — clean{extras}")
    if stats:
        lines.append(
            "analyzed {analyzed} of {total} file(s), {cached} from cache"
            .format(
                analyzed=stats.get("analyzed_files", "?"),
                total=stats.get("total_files", "?"),
                cached=stats.get("cached_files", 0),
            )
            + (" [warm cache]" if stats.get("cache_hit") else "")
        )
        timings = stats.get("rule_timings")
        if timings:
            lines.append("per-rule timings:")
            lines += [
                f"  {rule_id}: {seconds:.3f}s"
                for rule_id, seconds in sorted(timings.items())
            ]
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    errors: Sequence[str] = (),
    suppressed: Mapping | None = None,
    baselined: int = 0,
    rules_run: Sequence[str] | None = None,
    stats: Mapping | None = None,
) -> str:
    """Render findings as a stable JSON document.

    Parameters
    ----------
    findings:
        Findings to render, already sorted.
    errors:
        File-level read/parse errors.
    suppressed:
        Rule id → count of comment-suppressed findings.
    baselined:
        Findings grandfathered by the baseline ratchet.
    rules_run:
        Ids of the rules that ran; when given, ``by_rule`` is
        zero-filled over the full set so CI artifacts diff cleanly.
    stats:
        Project-run statistics, emitted as a top-level ``stats`` key
        when given.

    Returns
    -------
    str
        Pretty-printed JSON; see module docstring for the schema.
    """
    by_rule = Counter(finding.rule_id for finding in findings)
    if rules_run is not None:
        totals = {rule_id: by_rule.get(rule_id, 0)
                  for rule_id in sorted(rules_run)}
    else:
        totals = dict(sorted(by_rule.items()))
    suppressed = dict(sorted((suppressed or {}).items()))
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "summary": {
            "files_with_findings": len({f.path for f in findings}),
            "total": len(findings),
            "by_rule": totals,
            "suppressed": suppressed,
            "suppressed_total": sum(suppressed.values()),
            "baselined": baselined,
        },
        "findings": [finding.to_dict() for finding in findings],
        "errors": list(errors),
    }
    if stats is not None:
        document["stats"] = dict(stats)
    return json.dumps(document, indent=2)


def render_sarif(
    findings: Sequence[Finding],
    errors: Sequence[str] = (),
    suppressed: Mapping | None = None,
    baselined: int = 0,
    rules_run: Sequence[str] | None = None,
    stats: Mapping | None = None,
) -> str:
    """Render findings as a SARIF v2.1.0 document.

    One ``run`` of driver ``repro-lint``: each finding becomes a
    ``result`` at level ``error`` whose message text folds in the
    source→sink trace, located by repo-relative URI and 1-based
    line/column, and fingerprinted with the baseline ratchet's
    fingerprint (``partialFingerprints["reproLint/v1"]``) so GitHub
    code-scanning alerts keep their identity across line drift exactly
    like the local baseline does.  File-level read/parse errors are
    reported as tool execution notifications.

    Parameters
    ----------
    findings:
        Findings to render, already sorted.
    errors:
        File-level read/parse errors.
    suppressed:
        Rule id → count of comment-suppressed findings (carried in the
        run's ``properties``).
    baselined:
        Findings grandfathered by the baseline ratchet (ditto).
    rules_run:
        Ids of the rules that ran; when given, the driver's ``rules``
        metadata array is emitted and results carry ``ruleIndex``.
    stats:
        Project-run statistics, carried in the run's ``properties``.

    Returns
    -------
    str
        Pretty-printed SARIF JSON.
    """
    import repro

    rules_metadata: list = []
    rule_positions: dict = {}
    if rules_run:
        try:
            from repro.analysis.registry import get_rules

            instances = get_rules(select=list(rules_run))
        except ValueError:
            instances = []
        for position, rule in enumerate(instances):
            rule_positions[rule.rule_id] = position
            rules_metadata.append({
                "id": rule.rule_id,
                "shortDescription": {"text": rule.summary},
                "defaultConfiguration": {"level": "error"},
            })
    results = []
    for finding in findings:
        text = finding.message
        if finding.trace:
            text += "\n" + "\n".join(finding.trace)
        result = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": text},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(int(finding.line), 1),
                        "startColumn": int(finding.column) + 1,
                    },
                },
            }],
            "partialFingerprints": {
                "reproLint/v1": fingerprint(finding),
            },
        }
        if finding.rule_id in rule_positions:
            result["ruleIndex"] = rule_positions[finding.rule_id]
        results.append(result)
    invocation: dict = {"executionSuccessful": not errors}
    if errors:
        invocation["toolExecutionNotifications"] = [
            {"level": "error", "message": {"text": error}}
            for error in errors
        ]
    properties: dict = {
        "suppressed": dict(sorted((suppressed or {}).items())),
        "baselined": int(baselined),
    }
    if stats is not None:
        properties["stats"] = dict(stats)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": repro.__version__,
                    "rules": rules_metadata,
                },
            },
            "results": results,
            "invocations": [invocation],
            "properties": properties,
        }],
    }
    return json.dumps(document, indent=2)

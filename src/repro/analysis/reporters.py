"""Text and JSON rendering of analysis results.

The JSON schema is stable (``schema_version``) so CI and editor
integrations can consume it::

    {
      "schema_version": 1,
      "summary": {"files_with_findings": 1, "total": 2,
                  "by_rule": {"RNG-001": 2}},
      "findings": [{"path": ..., "line": ..., "column": ...,
                    "rule_id": ..., "message": ...}],
      "errors": []
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.findings import Finding

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], errors: Sequence[str] = ()) -> str:
    """Render findings as human-readable lines plus a summary.

    Parameters
    ----------
    findings:
        Findings to render, already sorted.
    errors:
        File-level read/parse errors.

    Returns
    -------
    str
        Multi-line report; ends with a one-line summary.
    """
    lines = [finding.format() for finding in findings]
    lines += [f"error: {error}" for error in errors]
    by_rule = Counter(finding.rule_id for finding in findings)
    if findings or errors:
        breakdown = ", ".join(
            f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(findings)} finding(s), {len(errors)} error(s)"
            + (f"  [{breakdown}]" if breakdown else "")
        )
    else:
        lines.append("0 findings — clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], errors: Sequence[str] = ()) -> str:
    """Render findings as a stable JSON document.

    Parameters
    ----------
    findings:
        Findings to render, already sorted.
    errors:
        File-level read/parse errors.

    Returns
    -------
    str
        Pretty-printed JSON; see module docstring for the schema.
    """
    by_rule = Counter(finding.rule_id for finding in findings)
    document = {
        "schema_version": JSON_SCHEMA_VERSION,
        "summary": {
            "files_with_findings": len({f.path for f in findings}),
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "findings": [finding.to_dict() for finding in findings],
        "errors": list(errors),
    }
    return json.dumps(document, indent=2)

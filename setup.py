"""Legacy setup shim.

Offline environments without the ``wheel`` package cannot complete a
PEP 660 editable install; this shim lets ``pip install -e . \
--no-build-isolation --no-use-pep517`` (or ``python setup.py develop``)
fall back to the classic setuptools path.
"""

from setuptools import setup

setup()
